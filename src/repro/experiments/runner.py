"""Shared experiment infrastructure: settings, run cache, table rendering.

The paper evaluates each algorithm on the same 10 distinct 20-event
sequences. Those are the defaults here; ``ExperimentSettings`` honours the
``REPRO_SEQUENCES``, ``REPRO_EVENTS`` and ``REPRO_BASE_SEED`` environment
variables so the benchmark harness can be scaled down for quick runs or up
for full fidelity without code changes.

``RunCache`` is a two-tier memoization layer for simulation runs:

* **memory tier** — per-instance dict, exactly one simulation per
  (scheduler, stimulus) pair within a harness instance;
* **disk tier** (optional, ``cache_dir=...``) — content-addressed JSON
  records keyed by scheduler name, sequence label, a fingerprint of the
  sequence's events, a fingerprint of the :class:`SystemConfig`, and a
  code-version salt. Repeated figure/bench invocations hit disk instead
  of re-simulating; any config or stimulus change misses by construction.

``prewarm`` fans missing runs out over a process pool (see
:mod:`repro.experiments.parallel`); because the simulation engine is fully
deterministic, parallel and serial execution produce identical
:class:`AppResult` lists.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.config import SystemConfig
from repro.errors import ExperimentError
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.results import AppResult
from repro.modes import normalize_mode
from repro.schedulers.registry import make_scheduler
from repro.workload.events import EventSequence

#: Paper defaults: 10 distinct sequences of 20 events each.
DEFAULT_SEQUENCES = 10
DEFAULT_EVENTS = 20

#: Base seed for sequence generation; sequence ``i`` uses ``BASE_SEED + i``.
BASE_SEED = 20230617  # ISCA'23 started June 17 2023

#: Code-version salt baked into every disk-cache key. Bump it whenever
#: simulation semantics change (scheduling logic, timing accounting,
#: result fields): stale entries then miss instead of resurfacing results
#: produced by older code.
CACHE_SALT = "nimblock-runcache-v1"


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ExperimentError(f"{name} must be an integer, got {raw!r}")
    if value < 1:
        raise ExperimentError(f"{name} must be >= 1, got {value}")
    return value


@dataclass(frozen=True)
class ExperimentSettings:
    """How many sequences/events each experiment runs."""

    num_sequences: int = DEFAULT_SEQUENCES
    num_events: int = DEFAULT_EVENTS
    base_seed: int = BASE_SEED

    @classmethod
    def from_env(cls) -> "ExperimentSettings":
        """Settings honouring REPRO_SEQUENCES / REPRO_EVENTS /
        REPRO_BASE_SEED overrides."""
        return cls(
            num_sequences=_env_int("REPRO_SEQUENCES", DEFAULT_SEQUENCES),
            num_events=_env_int("REPRO_EVENTS", DEFAULT_EVENTS),
            base_seed=_env_int("REPRO_BASE_SEED", BASE_SEED),
        )

    def seeds(self) -> List[int]:
        """Seed per sequence."""
        return [self.base_seed + i for i in range(self.num_sequences)]


def run_sequence(
    scheduler_name: str,
    sequence: EventSequence,
    config: Optional[SystemConfig] = None,
    mode: str = "full",
) -> List[AppResult]:
    """Run one event sequence under one scheduler to completion.

    ``mode="metrics"`` skips trace-row recording; the returned
    :class:`AppResult` list is identical in either mode (results are
    derived from hypervisor state, never from trace rows).
    """
    hypervisor = Hypervisor(
        make_scheduler(scheduler_name), config=config, mode=mode
    )
    for request in sequence.to_requests():
        hypervisor.submit(request)
    hypervisor.run()
    if not hypervisor.all_retired:
        raise ExperimentError(
            f"scheduler {scheduler_name!r} failed to retire all applications "
            f"on sequence {sequence.label!r} "
            f"({len(hypervisor.retired)}/{len(hypervisor.apps)})"
        )
    return hypervisor.results()


def config_fingerprint(config: SystemConfig) -> str:
    """Stable content hash of a :class:`SystemConfig`.

    Any field change (slot count, reconfiguration latency, token alpha,
    ...) changes the fingerprint, so disk-cache entries recorded under a
    different platform can never satisfy a lookup.
    """
    canonical = json.dumps(asdict(config), sort_keys=True, default=list)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def sequence_fingerprint(sequence: EventSequence) -> str:
    """Stable content hash of a sequence's events (not just its label)."""
    canonical = json.dumps(
        [
            [e.benchmark, e.batch_size, e.priority, e.arrival_ms]
            for e in sequence
        ],
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class RunCache:
    """Two-tier memoization of simulation runs per (scheduler, stimulus,
    platform).

    Figures 5-8 all consume the same stimuli; within one harness instance
    each (scheduler, sequence) pair simulates exactly once (memory tier).
    With ``cache_dir`` set, completed runs are additionally persisted as
    content-addressed JSON records so *separate* invocations (CLI runs,
    bench sessions, CI jobs) skip simulation entirely; a warm rerun
    performs zero simulations.

    Counters: ``simulations`` (real engine runs), ``memory_hits`` and
    ``disk_hits`` describe where each ``results`` call was served from.
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        jobs: Optional[int] = None,
        mode: str = "full",
    ) -> None:
        self.config = config or SystemConfig()
        self.cache_dir = Path(cache_dir) if cache_dir else None
        #: Default worker count for :meth:`prewarm` (None = REPRO_JOBS or 1).
        self.jobs = jobs
        #: Engine run mode for fresh simulations. Deliberately NOT part of
        #: the disk-cache key: results are mode-independent (pinned by
        #: ``tests/test_mode_equivalence.py``), so either mode may satisfy
        #: a lookup recorded by the other.
        self.mode = normalize_mode(mode)
        self._runs: Dict[Tuple[str, str], List[AppResult]] = {}
        self._label_fingerprints: Dict[str, str] = {}
        self._config_fingerprint = config_fingerprint(self.config)
        self.simulations = 0
        self.memory_hits = 0
        self.disk_hits = 0

    # -- keying ------------------------------------------------------------
    def _key(
        self, scheduler_name: str, sequence: EventSequence
    ) -> Tuple[str, str]:
        if not sequence.label:
            raise ExperimentError(
                "cached runs need labelled sequences (set EventSequence.label)"
            )
        fingerprint = sequence_fingerprint(sequence)
        known = self._label_fingerprints.get(sequence.label)
        if known is None:
            self._label_fingerprints[sequence.label] = fingerprint
        elif known != fingerprint:
            raise ExperimentError(
                f"sequence label {sequence.label!r} reused for different "
                "events (same label, different seed or contents); cached "
                "results would silently mix stimuli"
            )
        return (scheduler_name, sequence.label)

    def _disk_path(
        self, scheduler_name: str, sequence: EventSequence
    ) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        key_material = json.dumps(
            {
                "salt": CACHE_SALT,
                "scheduler": scheduler_name,
                "label": sequence.label,
                "sequence": sequence_fingerprint(sequence),
                "config": self._config_fingerprint,
            },
            sort_keys=True,
        )
        digest = hashlib.sha256(key_material.encode("utf-8")).hexdigest()
        return self.cache_dir / f"{digest}.json"

    # -- disk tier ---------------------------------------------------------
    def _disk_load(
        self, scheduler_name: str, sequence: EventSequence
    ) -> Optional[List[AppResult]]:
        path = self._disk_path(scheduler_name, sequence)
        if path is None or not path.exists():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            records = payload["results"]
            return [AppResult(**record) for record in records]
        except (ValueError, KeyError, TypeError) as error:
            raise ExperimentError(
                f"corrupt run-cache entry {path}: {error}; delete the file "
                "or call RunCache.invalidate(disk=True)"
            )

    def _disk_store(
        self,
        scheduler_name: str,
        sequence: EventSequence,
        results: List[AppResult],
    ) -> None:
        path = self._disk_path(scheduler_name, sequence)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "salt": CACHE_SALT,
            "scheduler": scheduler_name,
            "label": sequence.label,
            "config": asdict(self.config),
            "results": [asdict(result) for result in results],
        }
        # Atomic publish: concurrent workers/processes may race on the same
        # key; whoever replaces last wins with identical contents.
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp, path)

    # -- public API --------------------------------------------------------
    def results(
        self, scheduler_name: str, sequence: EventSequence
    ) -> List[AppResult]:
        """Results for one run: memory, then disk, then simulate."""
        key = self._key(scheduler_name, sequence)
        cached = self._runs.get(key)
        if cached is not None:
            self.memory_hits += 1
            return cached
        loaded = self._disk_load(scheduler_name, sequence)
        if loaded is not None:
            self.disk_hits += 1
            self._runs[key] = loaded
            return loaded
        results = run_sequence(
            scheduler_name, sequence, self.config, self.mode
        )
        self.simulations += 1
        self._runs[key] = results
        self._disk_store(scheduler_name, sequence, results)
        return results

    def combined(
        self, scheduler_name: str, sequences: Sequence[EventSequence]
    ) -> List[AppResult]:
        """Concatenated results across several sequences (stable order)."""
        combined: List[AppResult] = []
        for sequence in sequences:
            combined.extend(self.results(scheduler_name, sequence))
        return combined

    def prewarm(
        self,
        schedulers: Sequence[str],
        sequences: Sequence[EventSequence],
        jobs: Optional[int] = None,
    ) -> int:
        """Simulate every missing (scheduler, sequence) pair, in parallel.

        Pairs already in memory or on disk are skipped; the rest fan out
        over ``jobs`` worker processes (``None`` falls back to this cache's
        ``jobs``, then ``REPRO_JOBS``, then serial). Results land in both
        tiers, so subsequent ``results``/``combined`` calls are pure
        lookups. Returns the number of fresh simulations performed.

        Serial (``jobs=1``) and parallel execution run the same
        deterministic engine on identical inputs, so the cached results
        are independent of the worker count.
        """
        from repro.experiments import parallel

        pending: List[Tuple[Tuple[str, str], str, EventSequence]] = []
        seen_keys = set()
        for name in dict.fromkeys(schedulers):
            for sequence in sequences:
                key = self._key(name, sequence)
                if key in self._runs or key in seen_keys:
                    continue
                loaded = self._disk_load(name, sequence)
                if loaded is not None:
                    self.disk_hits += 1
                    self._runs[key] = loaded
                    continue
                seen_keys.add(key)
                pending.append((key, name, sequence))
        if not pending:
            return 0
        effective = jobs if jobs is not None else self.jobs
        tasks = [
            (name, sequence, self.config, self.mode)
            for _, name, sequence in pending
        ]
        for (key, name, sequence), results in zip(
            pending, parallel.map_runs(tasks, jobs=effective)
        ):
            self.simulations += 1
            self._runs[key] = results
            self._disk_store(name, sequence, results)
        return len(pending)

    def invalidate(self, disk: bool = False) -> None:
        """Drop the memory tier; with ``disk=True`` also delete every disk
        record under ``cache_dir``. Counters are preserved (they describe
        the cache's lifetime, not its current contents)."""
        self._runs.clear()
        self._label_fingerprints.clear()
        if disk and self.cache_dir is not None and self.cache_dir.exists():
            for path in self.cache_dir.glob("*.json"):
                path.unlink()


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Plain-text table with right-aligned numeric columns."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append(
            [
                f"{value:.2f}" if isinstance(value, float) else str(value)
                for value in row
            ]
        )
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(headers))
    ]
    lines = []
    for index, row in enumerate(cells):
        line = "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        lines.append(line)
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
