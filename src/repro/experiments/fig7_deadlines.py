"""Figure 7: deadline failure rate vs the deadline scaling factor.

Deadline = ``D_s x single-slot latency``; ``D_s`` sweeps 1..20 at 0.25
steps; the analysis focuses on high-priority (priority 9) applications.
All five algorithms (including the baseline) are swept, per scenario.

Paper shapes to reproduce: Nimblock has the lowest violation rate at the
tightest deadlines in all three scenarios and reaches the 10% error point
at a smaller ``D_s`` than PREMA in the stress and real-time tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import (
    ExperimentSettings,
    RunCache,
    format_table,
)
from repro.metrics.deadlines import (
    DEFAULT_DS_VALUES,
    DeadlineCurve,
    deadline_curve,
)
from repro.schedulers.registry import ALL_SCHEDULERS
from repro.workload.scenarios import SCENARIOS, Scenario, scenario_sequence

#: Priority level whose deadlines the paper analyzes (high priority).
ANALYZED_PRIORITY = 9


@dataclass(frozen=True)
class Fig7Result:
    """One deadline curve per (scenario, scheduler)."""

    scenarios: Tuple[str, ...]
    schedulers: Tuple[str, ...]
    curves: Dict[Tuple[str, str], DeadlineCurve]

    def curve(self, scenario: str, scheduler: str) -> DeadlineCurve:
        """Full sweep for one line of Figure 7."""
        return self.curves[(scenario, scheduler)]

    def tightest_rates(self, scenario: str) -> Dict[str, float]:
        """Violation rate at D_s = 1 per scheduler."""
        return {
            scheduler: self.curves[(scenario, scheduler)].tightest_rate
            for scheduler in self.schedulers
        }

    def error_points(
        self, scenario: str, target: float = 0.10
    ) -> Dict[str, Optional[float]]:
        """The 10% error point per scheduler (None = never reached)."""
        return {
            scheduler: self.curves[(scenario, scheduler)].error_point(target)
            for scheduler in self.schedulers
        }


def run(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[RunCache] = None,
    *,
    jobs: Optional[int] = None,
    mode: str = "full",
    scenarios: Sequence[Scenario] = SCENARIOS,
    schedulers: Sequence[str] = ALL_SCHEDULERS,
    priority: Optional[int] = ANALYZED_PRIORITY,
    ds_values: Sequence[float] = DEFAULT_DS_VALUES,
) -> Fig7Result:
    """Sweep deadline scaling factors over the scenario runs."""
    cache = cache or RunCache(jobs=jobs, mode=mode)
    settings = settings or ExperimentSettings.from_env()
    per_scenario = {
        scenario.name: [
            scenario_sequence(scenario, seed, settings.num_events)
            for seed in settings.seeds()
        ]
        for scenario in scenarios
    }
    cache.prewarm(
        schedulers,
        [seq for seqs in per_scenario.values() for seq in seqs],
        jobs=jobs,
    )
    curves: Dict[Tuple[str, str], DeadlineCurve] = {}
    for scenario in scenarios:
        sequences = per_scenario[scenario.name]
        for scheduler in schedulers:
            results = cache.combined(scheduler, sequences)
            curves[(scenario.name, scheduler)] = deadline_curve(
                scheduler, results, ds_values, priority=priority
            )
    return Fig7Result(
        scenarios=tuple(s.name for s in scenarios),
        schedulers=tuple(schedulers),
        curves=curves,
    )


def format_result(result: Fig7Result, plot: bool = True) -> str:
    """Tightest-deadline rates, 10% error points, and ASCII curves."""
    from repro.metrics.ascii_plot import render_curves

    blocks: List[str] = []
    for scenario in result.scenarios:
        headers = ["scheduler", "rate@Ds=1", "rate@Ds=2", "rate@Ds=4",
                   "10% point"]
        rows: List[List[object]] = []
        for scheduler in result.schedulers:
            curve = result.curve(scenario, scheduler)
            point = curve.error_point(0.10)
            rows.append(
                [
                    scheduler,
                    curve.rate_at(1.0),
                    curve.rate_at(2.0),
                    curve.rate_at(4.0),
                    "never" if point is None else f"{point:.2f}",
                ]
            )
        block = (
            f"Figure 7 ({scenario}): deadline violation rate, "
            f"priority-{ANALYZED_PRIORITY} apps\n"
            + format_table(headers, rows)
        )
        if plot:
            any_curve = result.curve(scenario, result.schedulers[0])
            xs = list(any_curve.ds_values)
            series = {
                scheduler: list(result.curve(scenario, scheduler).rates)
                for scheduler in result.schedulers
            }
            block += "\n" + render_curves(
                xs, series, width=64, height=12,
                y_label="violation rate", x_label="D_s",
            )
        blocks.append(block)
    return "\n\n".join(blocks)
