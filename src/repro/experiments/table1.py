"""Table 1: slot and static-region utilization of the ZCU106 overlay.

Regenerated from the overlay resource model; also validates that ten
slots plus the static region actually fit the device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.overlay.floorplan import Floorplan
from repro.overlay.resources import (
    RESOURCE_KINDS,
    SLOT_UTILIZATION_RANGE,
    STATIC_REGION_UTILIZATION,
)
from repro.experiments.runner import format_table


@dataclass(frozen=True)
class Table1Result:
    """Table 1 rows plus the floorplan feasibility check."""

    slot_range: Dict[str, Tuple[int, int]]
    static: Dict[str, int]
    device_utilization: Dict[str, float]
    floorplan_valid: bool


def run(
    settings=None,
    cache=None,
    *,
    jobs=None,
    mode: str = "full",
    num_slots: int = 10,
) -> Table1Result:
    """Build the overlay floorplan and report utilization.

    Uniform experiment signature; a static study, so ``settings``,
    ``cache`` and ``jobs`` are ignored.
    """
    plan = Floorplan.zcu106(num_slots=num_slots)
    plan.validate()
    report = plan.utilization_report()
    return Table1Result(
        slot_range=dict(SLOT_UTILIZATION_RANGE),
        static=STATIC_REGION_UTILIZATION.as_dict(),
        device_utilization=report["device_utilization"],
        floorplan_valid=True,
    )


def format_result(result: Table1Result) -> str:
    """Table 1 as text."""
    headers = ["region"] + list(RESOURCE_KINDS)
    slot_row: List[object] = ["Slot"] + [
        f"{low}-{high}" for low, high in (
            result.slot_range[kind] for kind in RESOURCE_KINDS
        )
    ]
    static_row: List[object] = ["Static"] + [
        result.static[kind] for kind in RESOURCE_KINDS
    ]
    util_row: List[object] = ["Device util"] + [
        f"{result.device_utilization[kind]:.0%}" for kind in RESOURCE_KINDS
    ]
    title = "Table 1: slot and static region utilization (ZCU106)"
    table = format_table(headers, [slot_row, static_row, util_row])
    return f"{title}\n{table}\nfloorplan fits device: {result.floorplan_valid}"
