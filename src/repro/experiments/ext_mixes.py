"""Extension study: scheduler robustness across workload mixes.

The paper evaluates a uniform draw over its six benchmarks. Here the same
algorithms face skewed tenant populations (short-task-heavy,
long-task-heavy, outlier-free) under stress arrivals.

Expected shape: Nimblock leads on every mix that contains long-running
applications able to monopolize slots (balanced, long-heavy, and the
outlier-free mix, which still carries AlexNet and optical flow). On the
short-task-dominated mix FCFS edges ahead: Nimblock's candidate gating
makes low-priority applications wait out the token threshold, a delay
that is invisible next to long benchmarks but material when most
applications finish in seconds. This is the low-priority-latency price of
priority protection, tunable through ``SystemConfig.token_alpha``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import (
    ExperimentSettings,
    RunCache,
    format_table,
)
from repro.metrics.response import mean_reduction_factor
from repro.workload.mixes import mix_sequence

#: Mixes reported, in table order.
MIX_NAMES: Tuple[str, ...] = ("balanced", "short_heavy", "long_heavy",
                              "no_outlier")

#: Algorithms compared against the baseline.
COMPARED: Tuple[str, ...] = ("fcfs", "prema", "rr", "nimblock")


@dataclass(frozen=True)
class MixResult:
    """Mean response-time reduction per (mix, scheduler)."""

    mixes: Tuple[str, ...]
    schedulers: Tuple[str, ...]
    reductions: Dict[Tuple[str, str], float]

    def reduction(self, mix: str, scheduler: str) -> float:
        """One cell of the robustness table."""
        return self.reductions[(mix, scheduler)]

    def best_scheduler(self, mix: str) -> str:
        """Winning algorithm on one mix."""
        return max(
            self.schedulers, key=lambda s: self.reductions[(mix, s)]
        )


def run(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[RunCache] = None,
    *,
    jobs: Optional[int] = None,
    mode: str = "full",
    mixes: Sequence[str] = MIX_NAMES,
    schedulers: Sequence[str] = COMPARED,
) -> MixResult:
    """Run every mix under the baseline plus each compared scheduler."""
    cache = cache or RunCache(jobs=jobs, mode=mode)
    settings = settings or ExperimentSettings.from_env()
    per_mix = {
        mix: [
            mix_sequence(mix, seed, settings.num_events)
            for seed in settings.seeds()
        ]
        for mix in mixes
    }
    cache.prewarm(
        ("baseline", *schedulers),
        [seq for seqs in per_mix.values() for seq in seqs],
        jobs=jobs,
    )
    reductions: Dict[Tuple[str, str], float] = {}
    for mix in mixes:
        sequences = per_mix[mix]
        baseline = cache.combined("baseline", sequences)
        for scheduler in schedulers:
            results = cache.combined(scheduler, sequences)
            reductions[(mix, scheduler)] = mean_reduction_factor(
                baseline, results
            )
    return MixResult(
        mixes=tuple(mixes),
        schedulers=tuple(schedulers),
        reductions=reductions,
    )


def format_result(result: MixResult) -> str:
    """Robustness table: mixes x schedulers."""
    headers = ["mix"] + [f"{s} (x)" for s in result.schedulers]
    rows: List[List[object]] = []
    for mix in result.mixes:
        row: List[object] = [mix]
        row.extend(
            result.reduction(mix, scheduler)
            for scheduler in result.schedulers
        )
        rows.append(row)
    title = (
        "Extension: response-time reduction across workload mixes "
        "(stress arrivals, vs no-sharing baseline)"
    )
    return f"{title}\n{format_table(headers, rows)}"
