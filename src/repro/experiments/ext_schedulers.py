"""Extension study: Nimblock vs EDF and DML-style static allocation.

Two policies beyond the paper's comparison set:

* **EDF** — classic earliest-deadline-first over internal deadlines;
  deadline-aware but neither priority-aware nor pipelined.
* **DML static** — pipelining with *fixed* per-application slot budgets
  (the contrast the paper draws with DML in §6.2: static designation, no
  runtime reallocation, no preemption).

Expected shapes: DML-static approaches Nimblock in light load but falls
behind under contention (no reallocation or rollback); EDF meets the most
deadlines *overall* precisely because it is priority-blind — Nimblock
instead concentrates its (fewer) high-priority violations near zero while
deliberately spending low-priority slack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import (
    ExperimentSettings,
    RunCache,
    format_table,
)
from repro.metrics.deadlines import violation_rate
from repro.metrics.response import mean_reduction_factor
from repro.workload.scenarios import SCENARIOS, Scenario, scenario_sequence

#: Policies compared (against the shared no-sharing baseline).
COMPARED: Tuple[str, ...] = ("edf", "dml_static", "prema", "nimblock")


#: Deadline scaling factor used for the tight-deadline columns.
TIGHT_DS = 1.5


@dataclass(frozen=True)
class SchedulerStudyResult:
    """Reduction and per-priority tight-deadline rates per scenario."""

    scenarios: Tuple[str, ...]
    schedulers: Tuple[str, ...]
    priorities: Tuple[int, ...]
    reductions: Dict[Tuple[str, str], float]
    tight_violation_rates: Dict[Tuple[str, str, int], float]

    def reduction(self, scenario: str, scheduler: str) -> float:
        """Mean response-time reduction for one cell."""
        return self.reductions[(scenario, scheduler)]

    def tight_rate(
        self, scenario: str, scheduler: str, priority: int
    ) -> float:
        """Violation rate at ``TIGHT_DS`` for one priority class."""
        return self.tight_violation_rates[(scenario, scheduler, priority)]


def run(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[RunCache] = None,
    *,
    jobs: Optional[int] = None,
    mode: str = "full",
    scenarios: Sequence[Scenario] = SCENARIOS,
    schedulers: Sequence[str] = COMPARED,
) -> SchedulerStudyResult:
    """Run the extended scheduler set over all three scenarios."""
    cache = cache or RunCache(jobs=jobs, mode=mode)
    settings = settings or ExperimentSettings.from_env()
    priorities = (1, 3, 9)
    per_scenario = {
        scenario.name: [
            scenario_sequence(scenario, seed, settings.num_events)
            for seed in settings.seeds()
        ]
        for scenario in scenarios
    }
    cache.prewarm(
        ("baseline", *schedulers),
        [seq for seqs in per_scenario.values() for seq in seqs],
        jobs=jobs,
    )
    reductions: Dict[Tuple[str, str], float] = {}
    tight: Dict[Tuple[str, str, int], float] = {}
    for scenario in scenarios:
        sequences = per_scenario[scenario.name]
        baseline = cache.combined("baseline", sequences)
        for scheduler in schedulers:
            results = cache.combined(scheduler, sequences)
            reductions[(scenario.name, scheduler)] = mean_reduction_factor(
                baseline, results
            )
            for priority in priorities:
                try:
                    rate = violation_rate(
                        results, TIGHT_DS, priority=priority
                    )
                except Exception:
                    rate = float("nan")  # no apps at this priority level
                tight[(scenario.name, scheduler, priority)] = rate
    return SchedulerStudyResult(
        scenarios=tuple(s.name for s in scenarios),
        schedulers=tuple(schedulers),
        priorities=priorities,
        reductions=reductions,
        tight_violation_rates=tight,
    )


def format_result(result: SchedulerStudyResult) -> str:
    """Two tables: reductions and tight-deadline violation rates."""
    blocks = []
    headers = ["scenario"] + [f"{s} (x)" for s in result.schedulers]
    rows: List[List[object]] = []
    for scenario in result.scenarios:
        row: List[object] = [scenario]
        row.extend(
            result.reduction(scenario, s) for s in result.schedulers
        )
        rows.append(row)
    blocks.append(
        "Extension: extended scheduler comparison — response-time "
        "reduction vs baseline\n" + format_table(headers, rows)
    )

    headers = ["scenario", "prio"] + list(result.schedulers)
    rows = []
    for scenario in result.scenarios:
        for priority in result.priorities:
            row = [scenario, priority]
            for scheduler in result.schedulers:
                rate = result.tight_rate(scenario, scheduler, priority)
                row.append("n/a" if rate != rate else f"{rate:.0%}")
            rows.append(row)
    blocks.append(
        f"Extension: violation rate at D_s = {TIGHT_DS} by priority class\n"
        + format_table(headers, rows)
    )
    return "\n\n".join(blocks)
