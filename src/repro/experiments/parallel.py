"""Parallel sweep executor: fan simulation runs out over worker processes.

The simulation engine is single-threaded and fully deterministic, so a
(scheduler, sequence, config) run is a pure function of its inputs — the
ideal unit for process-level fan-out. This module provides the shared
machinery behind :meth:`RunCache.prewarm` and the jobs-aware experiment
modules:

* :func:`map_runs` — fan plain ``run_sequence`` tasks out, results in
  task order;
* :func:`chaos_cells` — the fault-injection equivalent: each worker runs
  one chaos simulation and reduces its trace to the reliability scalars
  the studies aggregate (traces themselves never cross the process
  boundary);
* :func:`fanout` — the generic deterministic scatter/gather both build on.

Determinism contract: workers are stateless, tasks are partitioned into
contiguous chunks that are a pure function of (task count, worker count),
and results are gathered in task order — so for identical inputs the
returned lists are identical whatever ``jobs`` is, including ``jobs=1``
(which short-circuits to in-process execution through the *same* worker
function, keeping one code path for serial and parallel aggregation).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.config import SystemConfig
from repro.errors import ExperimentError
from repro.experiments.runner import _env_int, run_sequence
from repro.faults.models import FaultConfig
from repro.hypervisor.results import AppResult
from repro.workload.events import EventSequence

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")

#: A plain simulation task: (scheduler name, stimulus, platform config,
#: run mode). Chaos/overload/observed tasks have no mode leg: their
#: workers reduce *trace rows* to scalars, which only mode="full"
#: records.
RunTask = Tuple[str, EventSequence, Optional[SystemConfig], str]

#: A chaos task: (scheduler, stimulus, fault config, platform config).
ChaosTask = Tuple[
    str, EventSequence, Optional[FaultConfig], Optional[SystemConfig]
]


def effective_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: explicit value, else ``REPRO_JOBS``, else 1."""
    if jobs is None:
        return _env_int("REPRO_JOBS", 1)
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    return jobs


def resolve_jobs(jobs: Optional[int], cache=None) -> int:
    """Like :func:`effective_jobs`, but falling back to ``cache.jobs``."""
    if jobs is not None:
        return effective_jobs(jobs)
    if cache is not None and getattr(cache, "jobs", None) is not None:
        return effective_jobs(cache.jobs)
    return effective_jobs(None)


def _simulate(task: RunTask) -> List[AppResult]:
    """Worker: one plain simulation run (top-level for pickling)."""
    scheduler_name, sequence, config, mode = task
    return run_sequence(scheduler_name, sequence, config, mode)


@dataclass(frozen=True)
class ChaosCell:
    """One chaos run reduced to what the fault studies aggregate."""

    results: Tuple[AppResult, ...]
    goodput_items_per_s: float
    recovery_times_ms: Tuple[float, ...]
    work_lost_ms: float
    total_faults: int


def _simulate_chaos(task: ChaosTask) -> ChaosCell:
    """Worker: one fault-injected run plus its trace-derived scalars.

    The seeded fault RNG streams live in the injector, which is built
    inside the worker from the (picklable) ``FaultConfig`` — identical
    reconstruction to the serial path, hence identical draws.
    """
    from repro.experiments.ext_faults import run_chaos_sequence
    from repro.metrics.reliability import (
        goodput_items_per_s,
        recovery_times_ms,
        work_lost_ms,
    )

    scheduler_name, sequence, fault_config, config = task
    results, trace, stats = run_chaos_sequence(
        scheduler_name, sequence, fault_config, config=config
    )
    return ChaosCell(
        results=tuple(results),
        goodput_items_per_s=goodput_items_per_s(trace),
        recovery_times_ms=tuple(recovery_times_ms(trace)),
        work_lost_ms=work_lost_ms(trace),
        total_faults=stats.total_faults,
    )


def _chunksize(num_tasks: int, workers: int) -> int:
    """Contiguous, deterministic partition: ceil(n / workers) per worker."""
    return max(1, -(-num_tasks // workers))


def fanout(
    worker: Callable[[_Task], _Result],
    tasks: Sequence[_Task],
    jobs: Optional[int] = None,
) -> List[_Result]:
    """Run ``worker`` over ``tasks``, returning results in task order.

    ``jobs <= 1`` (or a single task) executes in-process; otherwise a
    :class:`ProcessPoolExecutor` scatters contiguous chunks. Exceptions
    raised in workers (e.g. :class:`ExperimentError` for a scheduler that
    fails to retire its workload) propagate to the caller.
    """
    tasks = list(tasks)
    jobs = effective_jobs(jobs)
    if jobs == 1 or len(tasks) <= 1:
        return [worker(task) for task in tasks]
    workers = min(jobs, len(tasks))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(
            pool.map(
                worker, tasks, chunksize=_chunksize(len(tasks), workers)
            )
        )


def map_runs(
    tasks: Sequence[RunTask], jobs: Optional[int] = None
) -> List[List[AppResult]]:
    """Fan plain simulation tasks out; one result list per task, in order."""
    return fanout(_simulate, tasks, jobs=jobs)


def chaos_cells(
    tasks: Sequence[ChaosTask], jobs: Optional[int] = None
) -> List[ChaosCell]:
    """Fan fault-injected simulation tasks out, in task order."""
    return fanout(_simulate_chaos, tasks, jobs=jobs)


#: An overload task: (scheduler, stimulus, admission policy name, seed,
#: fault config, platform config). The controller/watchdog pair is built
#: inside the worker from the picklable (policy name, seed) — identical
#: reconstruction to the serial path, hence identical retry jitter draws.
OverloadTask = Tuple[
    str, EventSequence, str, int, Optional[FaultConfig],
    Optional[SystemConfig],
]


@dataclass(frozen=True)
class OverloadCell:
    """One admission-controlled run reduced to its SLO scalars.

    Retired-app results cross the process boundary (they are small frozen
    records); the trace itself never does — every trace-derived quantity
    is reduced to a scalar inside the worker.
    """

    results: Tuple[AppResult, ...]
    admission_ratio: float
    drops: int
    shed: int
    overload_windows: int
    overload_ms: float
    goodput_under_overload: float
    starvation_index: float
    watchdog_stalls: int
    watchdog_kicks: int


def _simulate_overload(task: OverloadTask) -> OverloadCell:
    """Worker: one overload run plus its trace-derived SLO scalars."""
    from repro.experiments.ext_overload import run_overload_sequence
    from repro.metrics.slo import slo_report

    scheduler_name, sequence, policy, seed, fault_config, config = task
    results, trace, _ = run_overload_sequence(
        scheduler_name, sequence, policy, seed=seed,
        fault_config=fault_config, config=config,
    )
    report = slo_report(trace, results)
    return OverloadCell(
        results=tuple(results),
        admission_ratio=report.admission_ratio,
        drops=report.drops,
        shed=report.shed,
        overload_windows=report.overload_windows,
        overload_ms=report.overload_ms,
        goodput_under_overload=report.goodput_under_overload,
        starvation_index=report.starvation_index,
        watchdog_stalls=report.watchdog_stalls,
        watchdog_kicks=report.watchdog_kicks,
    )


def overload_cells(
    tasks: Sequence[OverloadTask], jobs: Optional[int] = None
) -> List[OverloadCell]:
    """Fan admission-controlled simulation tasks out, in task order.

    Deliberately cache-free: :class:`RunCache` keys do not include the
    admission policy, so overload cells must never be satisfied from (or
    recorded into) the plain-run cache.
    """
    return fanout(_simulate_overload, tasks, jobs=jobs)


#: An observed task: (scheduler, stimulus, fault config, platform config).
ObservedTask = ChaosTask


def _simulate_observed(task: ObservedTask) -> dict:
    """Worker: one instrumented run reduced to its metrics snapshot.

    Snapshots are plain dicts of trace-derived (deterministic) metrics, so
    they cross the process boundary cheaply and merge associatively on the
    gather side — the contract behind ``stats --jobs N`` determinism.
    """
    from repro.observe.aggregate import observed_run

    scheduler_name, sequence, fault_config, config = task[:4]
    admission = task[4] if len(task) > 4 else None
    seed = task[5] if len(task) > 5 else 0
    _, observer = observed_run(
        scheduler_name, sequence, fault_config, config=config,
        admission=admission, seed=seed,
    )
    return observer.snapshot()


def observed_snapshots(
    tasks: Sequence[ObservedTask], jobs: Optional[int] = None
) -> List[dict]:
    """Fan instrumented simulation tasks out; one snapshot each, in order."""
    return fanout(_simulate_observed, tasks, jobs=jobs)


#: A service task: (scheduler, admission policy name, arrival rate /s,
#: burstiness, seed, max submissions, window ms, run mode). The arrival
#: process, controller and watchdog are all rebuilt inside the worker
#: from these picklable scalars — identical reconstruction to the serial
#: path, so the returned report payloads are byte-identical at any jobs
#: count (and, since the payload carries no rows, at either run mode).
#: Trailing legs are optional (8-tuples from older callers still work):
#: [8] replay flag (default True — byte-identical either way); [9] an
#: :class:`~repro.autotune.engine.AutotuneConfig` (frozen, picklable) or
#: None; [10] an arrival-process override as a picklable ``(kind,
#: knob-pairs)`` tuple — e.g. ``("episode", (("phases", ((60.0, 1.0),
#: (120.0, 4.0))),))`` — replacing the default rate/burstiness process
#: (whose two scalars are then ignored).
ServiceTask = Tuple[str, str, float, float, int, int, float, str, bool]


def _simulate_service(task: ServiceTask) -> dict:
    """Worker: one open-loop service run reduced to its report payload.

    The payload is :meth:`repro.service.loop.ServiceReport.to_dict` — a
    plain dict whose windowed metrics merge associatively on the gather
    side; neither the trace nor per-app state ever crosses the process
    boundary (the loop discards both as it runs).
    """
    from repro.service.loop import ServiceLoop
    from repro.workload.arrivals import make_arrivals, service_rate_process

    (scheduler, admission, rate, burstiness, seed, submissions,
     window_ms, mode) = task[:8]
    replay = task[8] if len(task) > 8 else True
    autotune = task[9] if len(task) > 9 else None
    arrival_spec = task[10] if len(task) > 10 else None
    if arrival_spec is None:
        arrivals = service_rate_process(
            rate, seed=seed, burstiness=burstiness
        )
    else:
        kind, knob_pairs = arrival_spec
        arrivals = make_arrivals(kind, seed=seed, **dict(knob_pairs))
    loop = ServiceLoop(
        arrivals,
        scheduler=scheduler,
        admission=admission,
        seed=seed,
        max_submissions=submissions,
        window_ms=window_ms,
        mode=mode,
        replay=replay,
        autotune=autotune,
    )
    return loop.run().to_dict()


def service_cells(
    tasks: Sequence[ServiceTask], jobs: Optional[int] = None
) -> List[dict]:
    """Fan open-loop service runs out; report payloads in task order.

    Cache-free like :func:`overload_cells`: the run cache keys closed
    sequences, not open-loop streams.
    """
    return fanout(_simulate_service, tasks, jobs=jobs)
