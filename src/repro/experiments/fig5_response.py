"""Figure 5: relative response-time reduction under three congestion levels.

For each scenario (standard / stress / real-time) and each sharing
algorithm, we report the mean per-event response-time reduction factor
relative to the no-sharing baseline run on identical stimuli.

Paper shapes to reproduce: Nimblock wins every scenario (4.7x standard,
5.7x stress, 3.1x real-time over the baseline); PREMA is second; FCFS and
RR drop to ~1x or below in the real-time test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import (
    ExperimentSettings,
    RunCache,
    format_table,
)
from repro.metrics.response import mean_reduction_factor
from repro.schedulers.registry import SHARING_SCHEDULERS
from repro.workload.scenarios import SCENARIOS, Scenario, scenario_sequence


@dataclass(frozen=True)
class Fig5Result:
    """Mean reduction factor per (scenario, scheduler)."""

    scenarios: Tuple[str, ...]
    schedulers: Tuple[str, ...]
    reductions: Dict[Tuple[str, str], float]

    def reduction(self, scenario: str, scheduler: str) -> float:
        """Reduction factor for one cell of the figure."""
        return self.reductions[(scenario, scheduler)]

    def best_scheduler(self, scenario: str) -> str:
        """The winning algorithm in one scenario."""
        return max(
            self.schedulers, key=lambda s: self.reductions[(scenario, s)]
        )


def run(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[RunCache] = None,
    *,
    jobs: Optional[int] = None,
    mode: str = "full",
    scenarios: Sequence[Scenario] = SCENARIOS,
    schedulers: Sequence[str] = SHARING_SCHEDULERS,
) -> Fig5Result:
    """Execute (or reuse) all runs and compute the Figure 5 matrix."""
    cache = cache or RunCache(jobs=jobs, mode=mode)
    settings = settings or ExperimentSettings.from_env()
    per_scenario = {
        scenario.name: [
            scenario_sequence(scenario, seed, settings.num_events)
            for seed in settings.seeds()
        ]
        for scenario in scenarios
    }
    cache.prewarm(
        ("baseline", *schedulers),
        [seq for seqs in per_scenario.values() for seq in seqs],
        jobs=jobs,
    )
    reductions: Dict[Tuple[str, str], float] = {}
    for scenario in scenarios:
        sequences = per_scenario[scenario.name]
        baseline = cache.combined("baseline", sequences)
        for scheduler in schedulers:
            results = cache.combined(scheduler, sequences)
            reductions[(scenario.name, scheduler)] = mean_reduction_factor(
                baseline, results
            )
    return Fig5Result(
        scenarios=tuple(s.name for s in scenarios),
        schedulers=tuple(schedulers),
        reductions=reductions,
    )


def format_result(result: Fig5Result, plot: bool = True) -> str:
    """Figure 5 as a text table plus per-scenario bar charts."""
    from repro.metrics.ascii_plot import render_bars

    headers = ["scenario"] + [f"{s} (x)" for s in result.schedulers]
    rows: List[List[object]] = []
    for scenario in result.scenarios:
        row: List[object] = [scenario]
        row.extend(
            result.reduction(scenario, scheduler)
            for scheduler in result.schedulers
        )
        rows.append(row)
    title = "Figure 5: mean response-time reduction vs no-sharing baseline"
    text = f"{title}\n{format_table(headers, rows)}"
    if plot:
        for scenario in result.scenarios:
            bars = render_bars(
                list(result.schedulers),
                [result.reduction(scenario, s) for s in result.schedulers],
                unit="x",
            )
            text += f"\n\n{scenario}:\n{bars}"
    return text
