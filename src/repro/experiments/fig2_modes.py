"""Figure 2: the three sharing modes, rendered as board timelines.

The paper's Figure 2 contrasts (a) temporal multiplexing — tasks strictly
serialized, (b) task-parallel sharing — independent tasks space-share the
slots with batches bulk-processed, and (c) fine-grained sharing — tasks of
one application co-resident and pipelining across batch items.

We reproduce the contrast executably: the same two small applications run
under a one-slot serialized configuration, the bulk FCFS scheduler, and
the pipelined Nimblock scheduler; each run's slot-occupancy timeline and
makespan are reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.config import SystemConfig
from repro.hypervisor.application import AppRequest
from repro.hypervisor.hypervisor import Hypervisor
from repro.schedulers.registry import make_scheduler
from repro.sim.timeline import render_timeline
from repro.taskgraph.builders import chain_graph

#: The three modes of Figure 2: (label, scheduler, slots).
MODES: Tuple[Tuple[str, str, int], ...] = (
    ("(a) temporal multiplexing", "fcfs", 1),
    ("(b) task-parallel sharing", "fcfs", 4),
    ("(c) fine-grained pipelined sharing", "nimblock", 4),
)


@dataclass(frozen=True)
class Fig2Result:
    """Timelines and makespans per sharing mode."""

    makespans_ms: Dict[str, float]
    timelines: Dict[str, str]

    def makespan(self, label: str) -> float:
        """Time until the last application retired in one mode."""
        return self.makespans_ms[label]


def _demo_requests() -> List[AppRequest]:
    """Two small chain applications arriving back to back."""
    first = chain_graph("appA", [100.0, 100.0])
    second = chain_graph("appB", [100.0, 100.0])
    return [
        AppRequest("appA", first, batch_size=3, priority=3, arrival_ms=0.0),
        AppRequest("appB", second, batch_size=3, priority=3, arrival_ms=10.0),
    ]


def run(settings=None, cache=None, *, jobs=None, mode="full") -> Fig2Result:
    """Execute the demo workload under each sharing mode.

    Uniform experiment signature; the fixed two-app demo ignores
    ``settings``, ``cache`` and ``jobs``.
    """
    makespans: Dict[str, float] = {}
    timelines: Dict[str, str] = {}
    for label, scheduler, slots in MODES:
        config = SystemConfig(
            num_slots=slots, dispatch_overhead_ms=0.0,
        )
        hypervisor = Hypervisor(make_scheduler(scheduler), config=config)
        for request in _demo_requests():
            hypervisor.submit(request)
        hypervisor.run()
        makespans[label] = max(
            result.retire_ms for result in hypervisor.results()
        )
        timelines[label] = render_timeline(
            hypervisor.trace, num_slots=slots, width=72
        )
    return Fig2Result(makespans_ms=makespans, timelines=timelines)


def format_result(result: Fig2Result) -> str:
    """Figure 2 as annotated timelines."""
    blocks = ["Figure 2: sharing modes (A/B = application items, "
              "# = reconfiguration)"]
    for label, _, _ in MODES:
        blocks.append(
            f"\n{label} — makespan {result.makespan(label):.0f} ms\n"
            f"{result.timelines[label]}"
        )
    return "\n".join(blocks)
