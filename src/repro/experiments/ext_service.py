"""Service capacity study: max sustained open-loop rate within SLO (ext).

The paper's evaluation (and every closed experiment here) replays finite
bursts; a shared-FPGA *service* faces sustained open-loop load, where
the production question is the one THEMIS-style multi-tenant schedulers
are judged by: **what arrival rate can each scheduler sustain within
SLO?** This extension sweeps seeded Poisson arrival rates through the
:class:`~repro.service.loop.ServiceLoop` for every scheduler and
admission policy, evaluates each run against a two-dimensional
:class:`~repro.metrics.slo.SloTarget` (p99 response *and* loss
fraction), and reports the capacity curve — the highest swept rate such
that every rate up to it met the SLO (a sustained prefix, so one lucky
cell above a failure cannot inflate the figure).

Expectations mirror the closed-run overload study: the no-sharing
baseline saturates first; admission control (shed) trades loss for tail
latency, which under the two-dimensional SLO only raises capacity where
shedding stays inside the loss budget.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.experiments.parallel import ServiceTask, service_cells
from repro.experiments.runner import ExperimentSettings
from repro.metrics.slo import DEFAULT_SERVICE_SLO, SloTarget
from repro.service.loop import format_report
from repro.service.windows import WindowedMetrics

#: The nine schedulers of the capacity curve: the paper's five, the two
#: pipelining/preemption ablations, and the two extension policies.
CAPACITY_SCHEDULERS: Tuple[str, ...] = (
    "baseline",
    "fcfs",
    "prema",
    "rr",
    "nimblock",
    "nimblock_no_preempt",
    "nimblock_no_pipe",
    "edf",
    "dml_static",
)

#: Admission policies compared (unprotected vs load shedding).
CAPACITY_POLICIES: Tuple[str, ...] = ("unbounded", "shed")

#: Arrival rates swept (events/s). The ten-slot board with the service
#: benchmark pool saturates between 1 and 2 apps/s, so the grid brackets
#: the knee with a trivially-sustainable floor and a hopeless ceiling.
CAPACITY_RATES: Tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0)

#: Tumbling-window width of the capacity runs (ms).
CAPACITY_WINDOW_MS = 20_000.0


def _submissions(settings: ExperimentSettings) -> int:
    """Arrivals per cell, scaled like the closed sweeps scale events."""
    return max(12, settings.num_sequences * settings.num_events // 2)


def _evaluate_cell(payload: dict, slo: SloTarget) -> dict:
    """Reduce one service report payload to the study's scalars."""
    total = WindowedMetrics.from_dict(payload["windows"]).total()
    p99 = total.sketch.percentile(99.0)
    arrived = payload["arrived"]
    lost = payload["shed"] + payload["dropped"]
    loss_frac = (lost / arrived) if arrived else 0.0
    return {
        "scheduler": payload["scheduler"],
        "admission": payload["admission"],
        "arrived": arrived,
        "completed": payload["completed"],
        "shed": payload["shed"],
        "dropped": payload["dropped"],
        "p99_ms": p99,
        "loss_frac": loss_frac,
        "ok": slo.met(p99, loss_frac),
    }


def run(
    settings: Optional[ExperimentSettings] = None,
    cache=None,
    *,
    jobs: Optional[int] = None,
    mode: str = "full",
    schedulers: Sequence[str] = CAPACITY_SCHEDULERS,
    policies: Sequence[str] = CAPACITY_POLICIES,
    rates: Sequence[float] = CAPACITY_RATES,
    submissions: Optional[int] = None,
    window_ms: float = CAPACITY_WINDOW_MS,
    slo: Optional[SloTarget] = None,
) -> dict:
    """Sweep rate x scheduler x policy service runs; derive capacities.

    ``cache`` is accepted for registry uniformity but unused: the run
    cache keys closed sequences, and open-loop service runs must never
    be satisfied from it. Each rate uses one seed (derived from
    ``settings.base_seed``), so every scheduler/policy faces the
    *identical* arrival stream at that rate — capacity differences are
    pure scheduling/admission effects.
    """
    settings = settings or ExperimentSettings.from_env()
    if not rates or list(rates) != sorted(rates):
        raise ExperimentError(
            f"rates must be a non-empty ascending sweep, got {rates!r}"
        )
    slo = slo or DEFAULT_SERVICE_SLO
    per_cell = submissions if submissions is not None else _submissions(
        settings
    )
    tasks: List[ServiceTask] = []
    for rate_index, rate in enumerate(rates):
        seed = settings.base_seed + rate_index
        for scheduler in schedulers:
            for policy in policies:
                tasks.append(
                    (scheduler, policy, rate, 0.0, seed, per_cell,
                     window_ms, mode)
                )
    jobs = jobs if jobs is not None else getattr(cache, "jobs", None)
    payloads = service_cells(tasks, jobs=jobs)

    cells: Dict[str, dict] = {}
    for task, payload in zip(tasks, payloads):
        scheduler, policy, rate = task[0], task[1], task[2]
        cell = _evaluate_cell(payload, slo)
        cell["rate_per_s"] = rate
        cells[f"{scheduler}|{policy}|{rate:g}"] = cell

    capacity: Dict[str, Dict[str, float]] = {}
    for scheduler in schedulers:
        capacity[scheduler] = {}
        for policy in policies:
            sustained = 0.0
            for rate in rates:
                if cells[f"{scheduler}|{policy}|{rate:g}"]["ok"]:
                    sustained = rate
                else:
                    break
            capacity[scheduler][policy] = sustained
    return {
        "schedulers": list(schedulers),
        "policies": list(policies),
        "rates": list(rates),
        "submissions": per_cell,
        "window_ms": window_ms,
        "slo": {"p99_ms": slo.p99_ms, "max_loss_frac": slo.max_loss_frac},
        "cells": cells,
        "capacity": capacity,
    }


def format_result(result: dict) -> str:
    """Render the capacity curve plus the per-rate SLO matrix."""
    slo = SloTarget(
        p99_ms=result["slo"]["p99_ms"],
        max_loss_frac=result["slo"]["max_loss_frac"],
    )
    rates = result["rates"]
    policies = result["policies"]
    lines = [
        "Service capacity: max sustained open-loop arrival rate "
        f"within SLO ({slo.describe()})",
        f"{result['submissions']} submissions/cell, rates swept: "
        + ", ".join(f"{rate:g}/s" for rate in rates),
        "",
        f"{'scheduler':<22}" + "".join(
            f"{policy:>12}" for policy in policies
        ),
    ]
    for scheduler in result["schedulers"]:
        row = f"{scheduler:<22}"
        for policy in policies:
            rate = result["capacity"][scheduler][policy]
            row += f"{rate:>10g}/s"
        lines.append(row)
    lines.append("")
    lines.append("per-rate SLO attainment (+ met, - missed; p99 ms shown):")
    for scheduler in result["schedulers"]:
        for policy in policies:
            marks = []
            for rate in rates:
                cell = result["cells"][f"{scheduler}|{policy}|{rate:g}"]
                p99 = cell["p99_ms"]
                p99_text = "-" if p99 != p99 else f"{p99:.0f}"
                marks.append(
                    f"{rate:g}/s{'+' if cell['ok'] else '-'}({p99_text})"
                )
            lines.append(
                f"  {scheduler:<20} {policy:<10} " + " ".join(marks)
            )
    return "\n".join(lines)


def serve_report(
    *,
    rate: float = 2.0,
    burstiness: float = 0.0,
    submissions: int = 20_000,
    window_ms: float = 60_000.0,
    schedulers: Sequence[str] = ("nimblock",),
    admission: str = "shed",
    seed: int = 1,
    jobs: Optional[int] = None,
    mode: str = "full",
    replay: bool = True,
) -> str:
    """The one-shot ``nimblock-repro serve`` drill.

    Runs one open-loop service per requested scheduler (fanned out over
    ``jobs`` workers) and renders the deterministic report payloads —
    the text is byte-identical at any ``jobs`` count, which the
    ``service-smoke`` CI job diffs.
    """
    tasks: List[ServiceTask] = [
        (scheduler, admission, rate, burstiness, seed, submissions,
         window_ms, mode, replay)
        for scheduler in schedulers
    ]
    payloads = service_cells(tasks, jobs=jobs)
    blocks = [format_report(payload) for payload in payloads]
    return "\n\n".join(blocks)
