"""Overload protection for the hypervisor: admission control, load
shedding, graceful degradation and a scheduler watchdog.

Quickstart
----------
>>> from repro import Hypervisor, make_scheduler
>>> from repro.admission import AdmissionController, Watchdog
>>> hv = Hypervisor(
...     make_scheduler("nimblock"),
...     admission=AdmissionController("shed", seed=1),
...     watchdog=Watchdog(),
... )

See ``docs/robustness.md`` for the policy catalogue and tuning guidance.
"""

from repro.admission.controller import AdmissionController, AdmissionStats
from repro.admission.policies import (
    ADMISSION_POLICIES,
    AdmissionPolicy,
    DegradePolicy,
    RejectPolicy,
    ShedPolicy,
    make_admission_policy,
)
from repro.admission.watchdog import Watchdog, WatchdogConfig

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionController",
    "AdmissionPolicy",
    "AdmissionStats",
    "DegradePolicy",
    "RejectPolicy",
    "ShedPolicy",
    "Watchdog",
    "WatchdogConfig",
    "make_admission_policy",
]
