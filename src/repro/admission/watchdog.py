"""Scheduler watchdog: stall detection and per-app starvation recovery.

The watchdog rides the scheduler-pass cadence (the hypervisor calls
``on_pass`` at the end of every pass) and watches two failure shapes the
core algorithm cannot express:

* **global stall** — the board is wedged: applications are pending, no
  slot is executing, the configuration port is idle, and the progress
  signature (items completed, reconfigurations finished, preemptions,
  retirements, sheds) has not moved for ``stall_passes`` consecutive
  passes. Recovery detaches every idle resident at the batch boundary
  (the paper's preemption primitive, so batch progress survives) and
  books a fresh pass.
* **per-app starvation** — one pending application has seen no token
  growth and no batch progress for ``starvation_passes`` passes while
  others advance. Recovery boosts its token to the current pending
  maximum so it clears the PREMA candidate threshold on the next pass.

Interplay with the PR-1 fault stall-breaker: the hypervisor's
``_break_fault_stall`` acts *inside* the pass, before this hook runs, and
records the pass number it last acted on. The watchdog treats that
breaker action as progress (its preemptions move the progress signature)
and additionally refuses to kick in a pass the breaker owned — so the two
mechanisms never double-fire on the same stalled app (pinned by
``tests/test_admission.py::TestWatchdogFaultInterplay``).

Both detections emit ``WATCHDOG_STALL``; both recoveries emit
``WATCHDOG_KICK``. A detached watchdog costs nothing (the hook site is a
single ``is not None`` predicate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.errors import AdmissionError
from repro.overlay.device import SlotPhase
from repro.sim.trace import TraceKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.application import AppRun
    from repro.hypervisor.hypervisor import Hypervisor

#: Progress-signature kinds, resolved once (the enum attribute lookups
#: sit on the per-pass hot path).
_ITEM_DONE = TraceKind.ITEM_DONE
_CONFIG_DONE = TraceKind.TASK_CONFIG_DONE
_CONFIG_START = TraceKind.TASK_CONFIG_START
_PREEMPTED = TraceKind.TASK_PREEMPTED


@dataclass(frozen=True)
class WatchdogConfig:
    """Tuning knobs; see ``docs/robustness.md`` for guidance.

    The defaults are deliberately patient: a pass fires on every engine
    event, so thresholds are counted in passes-without-progress, not
    wall-clock, and false positives under long-running batch items are
    excluded structurally (a stall requires an idle board).
    """

    #: Consecutive no-progress passes before a wedged board is kicked.
    stall_passes: int = 20
    #: Consecutive no-progress passes before one app counts as starved.
    starvation_passes: int = 400
    #: Minimum passes between two recovery actions (global and per-app).
    cooldown_passes: int = 50
    #: Whether starvation recovery boosts the victim's scheduling token.
    boost_tokens: bool = True

    def validate(self) -> None:
        if self.stall_passes < 1:
            raise AdmissionError(
                f"stall_passes must be >= 1, got {self.stall_passes}"
            )
        if self.starvation_passes < 1:
            raise AdmissionError(
                f"starvation_passes must be >= 1, got {self.starvation_passes}"
            )
        if self.cooldown_passes < 0:
            raise AdmissionError(
                f"cooldown_passes must be >= 0, got {self.cooldown_passes}"
            )


class Watchdog:
    """Stall/starvation detector attached to one hypervisor."""

    def __init__(self, config: Optional[WatchdogConfig] = None) -> None:
        self.config = config or WatchdogConfig()
        self.config.validate()
        self._hv: Optional["Hypervisor"] = None
        self._progress_sig: Optional[Tuple[int, int, int, int, int]] = None
        self._stalled_passes = 0
        self._last_kick_pass = -(10**9)
        #: Per-app ``[token, slots_used, stalled_passes]`` — one mutable
        #: entry per never-started pending app (hot path: one dict probe
        #: per app per pass).
        self._app_progress: Dict[int, list] = {}
        self._app_last_kick: Dict[int, int] = {}
        #: Starvation pass clock: increments once per pass that reaches
        #: the starvation check. Entries store the clock value at their
        #: last reset, so a quiet pass ages every entry implicitly
        #: without touching it.
        self._ns_clock = 0
        #: Clock value at which the earliest entry can reach the
        #: starvation threshold (None with no entries).
        self._ns_next_fire: Optional[int] = None
        #: Change signature of everything the per-app walk reads; while
        #: it holds still the walk is skipped (see _check_starvation).
        self._ns_sig: Optional[tuple] = None
        #: Per-trace resolved counter source: the metrics/bounded traces
        #: expose their per-kind totals dict, saving four method calls
        #: per pass; the row-storing Trace falls back to ``count``.
        self._counts_trace: Optional[object] = None
        self._by_kind_counts: Optional[dict] = None
        #: Recovery-action counters (diagnostics and SLO metrics).
        self.stall_kicks = 0
        self.starvation_boosts = 0
        self.stalls_detected = 0
        self.starvations_detected = 0

    def attach(self, hypervisor: "Hypervisor") -> None:
        """Bind to one hypervisor (called from ``Hypervisor.__init__``)."""
        if self._hv is not None:
            raise AdmissionError(
                "watchdog is already attached to a hypervisor"
            )
        self._hv = hypervisor

    # ------------------------------------------------------------------
    def on_pass(self, hv: "Hypervisor", now: float) -> None:
        """End-of-pass hook: update counters, fire recovery when due."""
        trace = hv.trace
        if trace is not self._counts_trace:
            self._counts_trace = trace
            self._by_kind_counts = getattr(trace, "_total_by_kind", None)
        by_kind = self._by_kind_counts
        if by_kind is not None:
            get = by_kind.get
            item_done = get(_ITEM_DONE, 0)
            config_done = get(_CONFIG_DONE, 0)
            preempted = get(_PREEMPTED, 0)
            config_start = get(_CONFIG_START, 0)
        else:
            count = trace.count
            item_done = count(_ITEM_DONE)
            config_done = count(_CONFIG_DONE)
            preempted = count(_PREEMPTED)
            config_start = count(_CONFIG_START)
        sig = (
            item_done,
            config_done,
            preempted,
            len(hv.retired),
            len(hv.shed),
        )
        if sig != self._progress_sig:
            self._progress_sig = sig
            self._stalled_passes = 0
        elif len(hv.pending):
            self._stalled_passes += 1
        else:
            self._stalled_passes = 0
        if (
            self._stalled_passes >= self.config.stall_passes
            and self._check_stall(hv, now)
        ):
            # The stall kick just detached residents: re-read the counts
            # it moved so the starvation signature stays exact.
            if by_kind is not None:
                preempted = by_kind.get(_PREEMPTED, 0)
                config_start = by_kind.get(_CONFIG_START, 0)
            else:
                preempted = trace.count(_PREEMPTED)
                config_start = trace.count(_CONFIG_START)
        self._check_starvation(hv, now, config_start, preempted)

    # ------------------------------------------------------------------
    # Global stall
    # ------------------------------------------------------------------
    def _check_stall(self, hv: "Hypervisor", now: float) -> bool:
        """Returns True when a recovery action recorded trace events."""
        cfg = self.config
        if self._stalled_passes < cfg.stall_passes:
            return False
        if hv.scheduler_passes - self._last_kick_pass < cfg.cooldown_passes:
            return False
        if not self._wedged(hv):
            return False
        # The PR-1 fault stall-breaker already acted in this very pass:
        # it owns the recovery, the watchdog stands down.
        if hv._last_stall_break_pass == hv.scheduler_passes:
            self._stalled_passes = 0
            return False
        self.stalls_detected += 1
        hv.trace.record(
            now, TraceKind.WATCHDOG_STALL, detail=float(self._stalled_passes)
        )
        detached = hv._detach_idle_residents(now)
        if detached:
            self.stall_kicks += 1
            hv.trace.record(
                now, TraceKind.WATCHDOG_KICK, detail=float(detached)
            )
            hv._request_pass()
        self._last_kick_pass = hv.scheduler_passes
        self._stalled_passes = 0
        return True

    @staticmethod
    def _wedged(hv: "Hypervisor") -> bool:
        """Nothing is in flight but applications are still pending."""
        if not len(hv.pending) or hv.device.port.is_busy:
            return False
        return not any(slot.busy for slot in hv.device.slots)

    # ------------------------------------------------------------------
    # Per-app starvation
    # ------------------------------------------------------------------
    def _check_starvation(
        self, hv: "Hypervisor", now: float,
        config_starts: int, preemptions: int,
    ) -> None:
        cfg = self.config
        app_progress = self._app_progress
        # Apps that ran before are excluded structurally: waiting at a
        # batch boundary is not starvation, and ``first_item_start_ms``
        # never resets, so the never-started registry is exactly the set
        # that can ever be starved. Stale entries for started apps fall
        # to the sweep below.
        never_started = hv.pending.never_started_in_arrival_order()
        if not never_started and not app_progress:
            return
        clock = self._ns_clock + 1
        self._ns_clock = clock
        # Fast path: per-app starvation state only moves when a token, a
        # held-slot count or the queue membership changes, and every one
        # of those transitions bumps a monotone counter — queue version,
        # token generation, boost count, TASK_CONFIG_START (the
        # ``_slots_used`` increment site) and TASK_PREEMPTED (the
        # decrement sites, including watchdog detaches). While that
        # signature holds still, every entry just ages by one pass —
        # tracked implicitly by the clock — and the per-app walk is
        # deferred until the earliest entry could reach the threshold.
        # Fault injection moves ``_slots_used`` through paths outside
        # the signature (config failures, slot faults), so it disables
        # the fast path wholesale.
        if hv.faults is None:
            sig = (
                hv.pending.version,
                hv.scheduler.token_gen(),
                self.starvation_boosts,
                config_starts,
                preemptions,
            )
            if sig == self._ns_sig:
                next_fire = self._ns_next_fire
                if next_fire is None or clock < next_fire:
                    return
            else:
                self._ns_sig = sig
        else:
            self._ns_sig = None
        starvation_passes = cfg.starvation_passes
        live = len(never_started)
        # Max pending token, computed lazily on the first starvation hit
        # of the pass (over pre-boost tokens, as the eager version did —
        # boosts within a pass all reach the same target).
        max_token: Optional[float] = None
        min_base: Optional[int] = None
        for app in never_started:
            app_id = app.app_id
            # Items done is identically 0 for a never-started app (an
            # item completion implies an earlier first item start), so
            # token and held slots are the whole progress signal.
            token = app.token
            used = app._slots_used
            entry = app_progress.get(app_id)
            if entry is None or entry[0] != token or entry[1] != used:
                app_progress[app_id] = [token, used, clock]
                if min_base is None or clock < min_base:
                    min_base = clock
                continue
            base = entry[2]
            stalled = clock - base
            if stalled >= starvation_passes:
                last = self._app_last_kick.get(app_id, -(10**9))
                if hv.scheduler_passes - last >= cfg.cooldown_passes:
                    self.starvations_detected += 1
                    hv.trace.record(
                        now, TraceKind.WATCHDOG_STALL, app_id=app_id,
                        detail=float(stalled),
                    )
                    if max_token is None:
                        max_token = 0.0
                        for other in hv.pending.in_arrival_order():
                            if other.token > max_token:
                                max_token = other.token
                    if cfg.boost_tokens and max_token > app.token:
                        old_token = app.token
                        app.token = max_token
                        self.starvation_boosts += 1
                        hv.trace.record(
                            now, TraceKind.WATCHDOG_KICK, app_id=app_id,
                            detail=old_token,
                        )
                        hv._request_pass()
                    self._app_last_kick[app_id] = hv.scheduler_passes
                    entry[2] = base = clock
            if min_base is None or base < min_base:
                min_base = base
        self._ns_next_fire = (
            None if min_base is None else min_base + starvation_passes
        )
        # Drop bookkeeping for retired/shed/started apps so state stays
        # bounded.
        if len(app_progress) > live:
            pending = hv.pending
            for app_id in list(app_progress):
                app = pending.get(app_id)
                if app is None or app.first_item_start_ms is not None:
                    del app_progress[app_id]
                    self._app_last_kick.pop(app_id, None)


def _slot_is_idle_resident(slot) -> bool:
    """An occupied, non-busy slot (helper shared with the hypervisor)."""
    return slot.phase == SlotPhase.OCCUPIED and not slot.busy
