"""The admission controller guarding the hypervisor's pending queue.

One :class:`AdmissionController` sits in front of the
:class:`~repro.hypervisor.queues.PendingQueue` of exactly one hypervisor.
The hypervisor consults it at two deterministic points:

* ``admit(now, app_id, request)`` — on every application arrival, before
  the :class:`~repro.hypervisor.application.AppRun` is built. A rejecting
  policy re-schedules the arrival with seeded exponential backoff (or
  drops it after ``max_retries``); the caller simply skips admission.
* ``on_pass(now)`` — at the start of every scheduler pass: the pressure
  signal is refreshed (emitting ``OVERLOAD_ENTER`` / ``OVERLOAD_EXIT``
  edges with hysteresis) and the ``shed`` policy evicts victims at what
  is a batch boundary by construction.

With the default ``unbounded`` policy both hooks reduce to counter
updates that never touch the trace, so an attached-but-unbounded run is
byte-identical to a run with no controller at all (pinned by
``tests/test_admission.py`` against the golden sha256 pins).

Determinism: the only randomness is the retry jitter, drawn from a
``random.Random`` seeded per ``(seed, app_id, attempt)`` — independent of
arrival interleaving and process boundaries, so serial and parallel
sweeps agree byte-for-byte.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Union

from repro.admission.policies import (
    AdmissionPolicy,
    DegradePolicy,
    RejectPolicy,
    ShedPolicy,
    make_admission_policy,
)
from repro.errors import AdmissionError
from repro.sim.trace import TraceKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hypervisor.application import AppRequest, AppRun
    from repro.hypervisor.hypervisor import Hypervisor


@dataclass
class AdmissionStats:
    """Counters an admission controller accumulates over one run."""

    #: Distinct applications that arrived at least once.
    submitted: int = 0
    #: Applications accepted into the pending queue.
    admitted: int = 0
    #: Rejection events, including repeated retries of the same app.
    rejections: int = 0
    #: Applications dropped for good after exhausting their retries.
    dropped: int = 0
    #: Applications evicted from the pending queue by load shedding.
    shed: int = 0
    #: Completed overload windows (OVERLOAD_ENTER..EXIT pairs).
    overload_windows: int = 0
    #: OVERLOAD_ENTER edges, including a still-open window — with
    #: ``overload_windows`` this exposes oscillation (enter/exit
    #: flapping) without re-deriving it from trace rows.
    overload_enters: int = 0
    #: Total simulated time spent inside closed overload windows.
    overload_ms: float = 0.0
    #: Shed events by app priority level (sparse; absent = 0).
    shed_by_priority: Dict[int, int] = field(default_factory=dict)
    #: App ids dropped (rejected to death), in drop order.
    dropped_app_ids: List[int] = field(default_factory=list)

    @property
    def admission_ratio(self) -> float:
        """Fraction of distinct arrivals eventually admitted."""
        if self.submitted == 0:
            return 1.0
        return self.admitted / self.submitted


class AdmissionController:
    """Admission control, load shedding and degradation for one hypervisor."""

    def __init__(
        self,
        policy: Union[AdmissionPolicy, str] = "unbounded",
        seed: int = 0,
        **knobs,
    ) -> None:
        if isinstance(policy, str):
            policy = make_admission_policy(policy, **knobs)
        elif knobs:
            raise AdmissionError(
                "knob overrides require a policy name, not an instance; "
                f"got policy={policy!r} with knobs {sorted(knobs)}"
            )
        policy.validate()
        self.policy = policy
        self.seed = seed
        self.stats = AdmissionStats()
        self._hv: Optional["Hypervisor"] = None
        self._attempts: Dict[int, int] = {}
        self._overload_since: Optional[float] = None
        # The unbounded policy has no watermarks: both hooks short-circuit.
        high, low = policy.watermarks()
        self._high_watermark = high
        self._low_watermark = low
        # Policy kind, resolved once: these isinstance checks sit on the
        # per-pass (and per-arrival) hot paths and the policy object never
        # changes after construction.
        self._is_shed = isinstance(policy, ShedPolicy)
        self._is_degrade = isinstance(policy, DegradePolicy)
        # Pass-skip memo: for depth-driven policies the whole ``on_pass``
        # body is a pure function of queue depth, and depth cannot change
        # without a ``pending.version`` bump. ``_pass_skip_ok`` records
        # whether the last live pass ended in a state where an unchanged
        # version guarantees a no-op (never true for the degrade policy,
        # whose wait-time leg moves with the clock, and not while the
        # shed policy sits above capacity, where a victim can become
        # sheddable via a ``_slots_used`` decrement that bumps nothing).
        self._pass_version: int = -1
        self._pass_skip_ok = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, hypervisor: "Hypervisor") -> None:
        """Bind to one hypervisor (called from ``Hypervisor.__init__``)."""
        if self._hv is not None:
            raise AdmissionError(
                "admission controller is already attached to a hypervisor"
            )
        self._hv = hypervisor

    @property
    def overload_active(self) -> bool:
        """True while the pressure signal is inside an overload window."""
        return self._overload_since is not None

    # ------------------------------------------------------------------
    # Arrival hook
    # ------------------------------------------------------------------
    def admit(self, now: float, app_id: int, request: "AppRequest") -> bool:
        """Decide one arrival; True admits it into the pending queue.

        On False the controller has already either re-scheduled the
        arrival (reject policy, within its retry budget) or dropped the
        application; the hypervisor skips admission bookkeeping entirely.
        """
        if app_id not in self._attempts:
            self.stats.submitted += 1
        if not isinstance(self.policy, RejectPolicy):
            self.stats.admitted += 1
            return True
        hv = self._require_hv()
        policy = self.policy
        if len(hv.pending) < policy.queue_capacity:
            self._attempts.pop(app_id, None)
            self.stats.admitted += 1
            return True
        attempt = self._attempts.get(app_id, 0) + 1
        self._attempts[app_id] = attempt
        self.stats.rejections += 1
        if attempt > policy.max_retries:
            # Out of retries: the application never enters the system.
            self.stats.dropped += 1
            self.stats.dropped_app_ids.append(app_id)
            self._attempts.pop(app_id, None)
            hv.trace.record(
                now, TraceKind.APP_REJECTED, app_id=app_id,
                detail=-float(attempt),
            )
            return False
        hv.trace.record(
            now, TraceKind.APP_REJECTED, app_id=app_id, detail=float(attempt),
        )
        delay = policy.backoff_ms(attempt) * (1.0 + self._jitter(app_id, attempt))
        hv._arrivals_outstanding += 1
        hv.engine.schedule_delay(
            delay,
            lambda retry_now, a=app_id, r=request: hv._on_arrival(
                retry_now, a, r
            ),
            -5,
        )
        return False

    def _jitter(self, app_id: int, attempt: int) -> float:
        """Seeded, order-independent jitter fraction in ``±jitter_frac``."""
        frac = self.policy.jitter_frac  # type: ignore[attr-defined]
        if frac <= 0.0:
            return 0.0
        rng = random.Random(f"admission:{self.seed}:{app_id}:{attempt}")
        return rng.uniform(-frac, frac)

    # ------------------------------------------------------------------
    # Pass hook
    # ------------------------------------------------------------------
    def on_pass(self, now: float) -> None:
        """Refresh pressure and (for the shed policy) evict victims."""
        if self._high_watermark is None:
            return
        hv = self._require_hv()
        version = hv.pending.version
        if version == self._pass_version and self._pass_skip_ok:
            return
        self._update_pressure(hv, now)
        if self._is_shed:
            if self._shed_victims(hv, now):
                # Depth only changed if someone was actually evicted; a
                # second refresh with identical state is a no-op, skip it.
                self._update_pressure(hv, now)
            self._pass_skip_ok = (
                len(hv.pending) <= self.policy.queue_capacity
            )
        else:
            self._pass_skip_ok = not self._is_degrade
        self._pass_version = hv.pending.version

    def _update_pressure(self, hv: "Hypervisor", now: float) -> None:
        depth = len(hv.pending)
        if self._overload_since is None:
            if depth >= self._high_watermark or self._wait_high(hv, now):
                self._overload_since = now
                self.stats.overload_enters += 1
                hv.trace.record(
                    now, TraceKind.OVERLOAD_ENTER, detail=float(depth)
                )
        else:
            if depth <= self._low_watermark and not self._wait_high(
                hv, now, exit_side=True
            ):
                self.stats.overload_windows += 1
                self.stats.overload_ms += now - self._overload_since
                self._overload_since = None
                hv.trace.record(
                    now, TraceKind.OVERLOAD_EXIT, detail=float(depth)
                )

    def _wait_high(
        self, hv: "Hypervisor", now: float, exit_side: bool = False
    ) -> bool:
        """Degrade-policy wait-time leg of the pressure signal.

        Pressure is *queueing* delay: the longest wait among pending
        applications that have not started executing. Apps mid-execution
        stay pending until they retire, so the oldest unretired app's age
        would count normal service time and flag an idle board.
        """
        if not self._is_degrade:
            return False
        waited = 0.0
        for app in hv.pending.never_started_in_arrival_order():
            if app._slots_used == 0:
                waited = now - app.arrival_ms
                break
        threshold = self.policy.wait_high_ms
        if exit_side:
            threshold /= 2.0
        return waited >= threshold

    def _shed_victims(self, hv: "Hypervisor", now: float) -> int:
        policy = self.policy
        assert isinstance(policy, ShedPolicy)
        if len(hv.pending) <= policy.queue_capacity:
            return 0
        low = policy.effective_low_watermark()
        # Only never-started apps are sheddable; the registry hands the
        # subset over directly (an app can hold configured slots without
        # having launched an item, hence the residual ``_slots_used``
        # filter).
        victims = [
            app for app in hv.pending.never_started_in_arrival_order()
            if app._slots_used == 0
        ]
        # Lowest priority first; within a priority the youngest goes first
        # (it has waited least, so dropping it wastes the least patience).
        victims.sort(key=lambda app: (app.priority, -app.arrival_ms, -app.app_id))
        shed = 0
        for app in victims:
            if len(hv.pending) <= low:
                break
            hv._shed_app(app, now)
            self.stats.shed += 1
            by_priority = self.stats.shed_by_priority
            by_priority[app.priority] = by_priority.get(app.priority, 0) + 1
            shed += 1
        return shed

    @staticmethod
    def _sheddable(app: "AppRun") -> bool:
        """Only applications with zero progress may be shed."""
        return app._slots_used == 0 and app.first_item_start_ms is None

    # ------------------------------------------------------------------
    # Degradation signals consumed by the scheduler / launch loop
    # ------------------------------------------------------------------
    def slot_cap(self) -> Optional[int]:
        """Per-application slot-allocation cap, or None outside overload."""
        if self._is_degrade and self._overload_since is not None:
            return self.policy.slot_cap
        return None

    def pipelining_allowed(self) -> bool:
        """False while the degrade policy throttles pipelining depth."""
        if self._is_degrade and self._overload_since is not None:
            return not self.policy.cap_pipelining
        return True

    def filter_candidates(self, apps: List["AppRun"]) -> List["AppRun"]:
        """The scheduler's candidate view, possibly browned out.

        While the degrade policy is overloaded (and
        ``priority_scheduling`` is set), the view is re-ordered
        priority-major — highest priority class first, arrival order
        within a class — so even a priority-blind scheduler serves the
        most important waiting work first. No application is ever hidden:
        slots stay fed and low classes are delayed, not starved. Outside
        overload — and for every other policy — the input list is
        returned unchanged (same object: zero copy, zero drift).
        """
        if not apps or not self.overload_active:
            return apps
        policy = self.policy
        if (
            not isinstance(policy, DegradePolicy)
            or not policy.priority_scheduling
        ):
            return apps
        return sorted(apps, key=lambda app: (-app.priority, app.age_key))

    # ------------------------------------------------------------------
    def overload_total_ms(self, now: Optional[float] = None) -> float:
        """Closed overload time, plus the open window up to ``now``."""
        total = self.stats.overload_ms
        if self._overload_since is not None and now is not None:
            total += max(0.0, now - self._overload_since)
        return total

    def _require_hv(self) -> "Hypervisor":
        if self._hv is None:
            raise AdmissionError(
                "admission controller is not attached to a hypervisor"
            )
        return self._hv
