"""Pluggable admission policies for the hypervisor's pending queue.

The paper's hypervisor (§2.2) accepts every arrival forever; under the
stress/real-time congestion scenarios (§5.2) a sustained burst simply
grows the queue without bound. These policies bound that behaviour:

* **unbounded** — today's semantics, the default. Never rejects, never
  sheds, never degrades; a controller carrying this policy emits no
  trace events and a run is byte-identical to one with no controller.
* **reject** — a bounded queue. Arrivals beyond ``queue_capacity`` are
  rejected and retried with seeded exponential backoff; after
  ``max_retries`` failed attempts the application is dropped.
* **shed** — load shedding at decision-pass boundaries: while the queue
  is over capacity, pending applications that have made no progress are
  evicted, lowest priority first (then youngest first), down to the low
  watermark.
* **degrade** — graceful degradation: while a queue-depth / wait-time
  pressure signal is high, the Nimblock goal-number slot raises are
  capped and inter-batch pipelining depth is throttled to bulk mode, so
  each admitted application holds fewer slots and the backlog drains.

Every policy is a frozen dataclass, so controllers (and the parallel
experiment workers that rebuild them from a name) are trivially
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, Optional, Tuple, Type

from repro.errors import AdmissionError


@dataclass(frozen=True)
class AdmissionPolicy:
    """Base class: the ``unbounded`` (accept-everything) policy.

    ``high_watermark`` / ``low_watermark`` bound the overload hysteresis
    band shared by the bounded policies; the base policy disables both.
    """

    kind = "unbounded"

    def validate(self) -> None:
        """Raise :class:`AdmissionError` on inconsistent knob values."""

    def watermarks(self) -> Tuple[Optional[int], Optional[int]]:
        """(high, low) pending-depth watermarks, or (None, None)."""
        return (None, None)


@dataclass(frozen=True)
class RejectPolicy(AdmissionPolicy):
    """Bounded queue with seeded exponential-backoff retries.

    An arrival finding ``queue_capacity`` applications already pending is
    rejected; the workload layer re-submits it after
    ``backoff_base_ms * backoff_factor**(attempt-1)`` (capped, plus a
    seeded jitter fraction). After ``max_retries`` rejections the
    application is dropped for good.
    """

    kind = "reject"

    queue_capacity: int = 12
    max_retries: int = 6
    backoff_base_ms: float = 100.0
    backoff_factor: float = 2.0
    backoff_cap_ms: float = 3200.0
    jitter_frac: float = 0.25

    def validate(self) -> None:
        if self.queue_capacity < 1:
            raise AdmissionError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.max_retries < 0:
            raise AdmissionError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_ms <= 0 or self.backoff_cap_ms <= 0:
            raise AdmissionError("backoff times must be > 0")
        if self.backoff_factor < 1.0:
            raise AdmissionError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter_frac < 1.0:
            raise AdmissionError(
                f"jitter_frac must be in [0, 1), got {self.jitter_frac}"
            )

    def backoff_ms(self, attempt: int) -> float:
        """Deterministic backoff midpoint for retry ``attempt`` (1-based)."""
        return min(
            self.backoff_base_ms * self.backoff_factor ** (attempt - 1),
            self.backoff_cap_ms,
        )

    def watermarks(self) -> Tuple[Optional[int], Optional[int]]:
        return (self.queue_capacity, max(1, self.queue_capacity * 3 // 4))


@dataclass(frozen=True)
class ShedPolicy(AdmissionPolicy):
    """Load shedding at decision-pass boundaries.

    While more than ``queue_capacity`` applications are pending, victims
    that have made no progress (never configured a slot, never ran an
    item) are evicted lowest-priority-first, youngest-first within a
    priority, until the queue drains to ``low_watermark`` (default: 3/4
    of capacity). In-flight applications are never shed — eviction at any
    other point would discard batch progress the paper's preemption
    checkpoint explicitly preserves.
    """

    kind = "shed"

    queue_capacity: int = 12
    low_watermark: Optional[int] = None

    def validate(self) -> None:
        if self.queue_capacity < 1:
            raise AdmissionError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        low = self.effective_low_watermark()
        if not 0 < low <= self.queue_capacity:
            raise AdmissionError(
                f"low_watermark must be in (0, queue_capacity], got {low}"
            )

    def effective_low_watermark(self) -> int:
        if self.low_watermark is not None:
            return self.low_watermark
        return max(1, self.queue_capacity * 3 // 4)

    def watermarks(self) -> Tuple[Optional[int], Optional[int]]:
        return (self.queue_capacity, self.effective_low_watermark())


@dataclass(frozen=True)
class DegradePolicy(AdmissionPolicy):
    """Graceful degradation while a pressure signal is high.

    The controller enters overload when the pending depth reaches
    ``high_watermark`` or the oldest pending application has waited
    longer than ``wait_high_ms``, and exits when the depth falls to
    ``low_watermark`` with the wait below half the threshold. While
    overloaded, three levers throttle service instead of refusing it:

    * Nimblock's per-application slot allocation is capped at
      ``slot_cap`` (goal raises and surplus grants alike);
    * when ``cap_pipelining`` is set, item launches fall back to bulk
      mode — prefetched-but-idle tasks are what over-consume slots under
      pressure;
    * when ``priority_scheduling`` is set, the scheduler's candidate
      view is re-ordered priority-major (highest class first, arrival
      order within a class): a brownout that makes even priority-blind
      policies like FCFS serve the most important waiting work first,
      without ever hiding an application (slots stay fed, low classes
      are delayed rather than starved).
    """

    kind = "degrade"

    high_watermark: int = 12
    low_watermark: int = 6
    wait_high_ms: float = 15000.0
    slot_cap: int = 4
    cap_pipelining: bool = True
    priority_scheduling: bool = True

    def validate(self) -> None:
        if self.high_watermark < 1:
            raise AdmissionError(
                f"high_watermark must be >= 1, got {self.high_watermark}"
            )
        if not 0 < self.low_watermark <= self.high_watermark:
            raise AdmissionError(
                "low_watermark must be in (0, high_watermark], got "
                f"{self.low_watermark}"
            )
        if self.wait_high_ms <= 0:
            raise AdmissionError(
                f"wait_high_ms must be > 0, got {self.wait_high_ms}"
            )
        if self.slot_cap < 1:
            raise AdmissionError(
                f"slot_cap must be >= 1, got {self.slot_cap}"
            )

    def watermarks(self) -> Tuple[Optional[int], Optional[int]]:
        return (self.high_watermark, self.low_watermark)


#: Policy registry, in mildest-to-strictest order.
POLICY_CLASSES: Dict[str, Type[AdmissionPolicy]] = {
    "unbounded": AdmissionPolicy,
    "reject": RejectPolicy,
    "shed": ShedPolicy,
    "degrade": DegradePolicy,
}

#: Every admission policy name, in registry order.
ADMISSION_POLICIES: Tuple[str, ...] = tuple(POLICY_CLASSES)


def make_admission_policy(name: str, **overrides) -> AdmissionPolicy:
    """Build a policy by name, with optional knob overrides.

    >>> make_admission_policy("reject", queue_capacity=4).queue_capacity
    4
    """
    cls = POLICY_CLASSES.get(name)
    if cls is None:
        raise AdmissionError(
            f"unknown admission policy {name!r}; known: "
            f"{', '.join(ADMISSION_POLICIES)}"
        )
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(overrides) - known)
    if unknown:
        raise AdmissionError(
            f"policy {name!r} has no knobs {unknown}; known: {sorted(known)}"
        )
    policy = replace(cls(), **overrides) if overrides else cls()
    policy.validate()
    return policy
