"""The run-mode vocabulary shared by every layer of the stack.

One ``mode=`` parameter travels uniformly through
:class:`~repro.sim.engine.SimulationEngine`,
:class:`~repro.hypervisor.hypervisor.Hypervisor`, the
:func:`~repro.facade.simulate` / :func:`~repro.facade.serve` /
:func:`~repro.facade.fleet` facades, ``run_experiment`` and the CLI:

``"full"``
    Record every trace row (the default). Required for row-level
    post-processing: trace export, span pairing, timelines, the
    utilization/reliability metrics.

``"metrics"``
    Skip columnar trace row appends entirely and fold completions
    directly into the (associative) observe counters and quantile
    sketches. Counter-identical to a full-mode run — same events, same
    order, same results, same lifetime counts — at a fraction of the
    cost. Trace-row-requiring actions raise
    :class:`~repro.errors.ExperimentError`.

Every layer validates through :func:`normalize_mode` so an unknown mode
fails loudly at construction, not deep inside a run.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ExperimentError

#: The run modes accepted by every ``mode=`` parameter in the stack.
MODES: Tuple[str, ...] = ("full", "metrics")

MODE_FULL = "full"
MODE_METRICS = "metrics"


def normalize_mode(mode: str) -> str:
    """Validate and canonicalise a run mode string.

    >>> normalize_mode("metrics")
    'metrics'
    >>> normalize_mode("turbo")
    Traceback (most recent call last):
        ...
    repro.errors.ExperimentError: unknown run mode 'turbo'; known: full, metrics
    """
    if mode not in MODES:
        raise ExperimentError(
            f"unknown run mode {mode!r}; known: {', '.join(MODES)}"
        )
    return mode
