"""The pipelined-schedule model underlying the saturation analysis.

A :class:`ScheduleProblem` is one application alone on a ``k``-slot
overlay: every task must be configured once (80 ms each, serialized through
the CAP), tasks mapped to the same slot run one after the other (the slot
is reconfigured between them), and batch items flow through co-resident
tasks in pipelined fashion.

Given a task-to-slot assignment, :func:`evaluate_assignment` computes the
exact makespan of the canonical dispatch: configurations issue in
topological order as soon as the CAP and the target slot are available, and
each task processes item ``b`` as soon as it is configured, finished item
``b-1``, and every predecessor has produced item ``b``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.errors import SolverError
from repro.taskgraph.graph import TaskGraph


@dataclass(frozen=True)
class ScheduleProblem:
    """One application, alone, on a ``num_slots`` overlay."""

    graph: TaskGraph
    batch_size: int
    num_slots: int
    reconfig_ms: float

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise SolverError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.num_slots < 1:
            raise SolverError(f"num_slots must be >= 1, got {self.num_slots}")
        if self.reconfig_ms < 0:
            raise SolverError(f"reconfig_ms must be >= 0, got {self.reconfig_ms}")

    @property
    def num_tasks(self) -> int:
        """Tasks in the application graph."""
        return self.graph.num_tasks

    def lower_bound_ms(self) -> float:
        """A valid makespan lower bound used for pruning.

        The maximum of (a) the per-item critical path plus the pipeline
        drain of the remaining ``batch - 1`` items through the slowest
        task, and (b) total work divided by the slot count, plus the first
        mandatory reconfiguration.
        """
        slowest = max(
            self.graph.task(t).latency_ms
            for t in self.graph.topological_order
        )
        pipeline = (
            self.graph.critical_path_ms()
            + (self.batch_size - 1) * slowest
        )
        work = self.batch_size * self.graph.total_latency_ms() / self.num_slots
        return self.reconfig_ms + max(pipeline, work)


def evaluate_assignment(
    problem: ScheduleProblem,
    assignment: Mapping[str, int],
) -> float:
    """Exact makespan of the canonical dispatch for one assignment.

    ``assignment`` maps every task id to a slot index in
    ``[0, num_slots)``. Raises :class:`SolverError` on partial or
    out-of-range assignments.
    """
    graph = problem.graph
    order = graph.topological_order
    for task_id in order:
        slot = assignment.get(task_id)
        if slot is None:
            raise SolverError(f"assignment misses task {task_id!r}")
        if not 0 <= slot < problem.num_slots:
            raise SolverError(
                f"task {task_id!r} assigned to invalid slot {slot}"
            )

    batch = problem.batch_size
    cap_free = 0.0
    slot_free: Dict[int, float] = {}
    config_done: Dict[str, float] = {}
    # finish[task][b] = completion time of batch item b on task.
    finish: Dict[str, list] = {}

    for task_id in order:
        slot = assignment[task_id]
        latency = graph.task(task_id).latency_ms
        config_start = max(cap_free, slot_free.get(slot, 0.0))
        done = config_start + problem.reconfig_ms
        cap_free = done
        config_done[task_id] = done

        times = []
        prev_item_done = done
        preds = graph.predecessors(task_id)
        for item in range(batch):
            ready = prev_item_done
            for pred in preds:
                ready = max(ready, finish[pred][item])
            item_done = ready + latency
            times.append(item_done)
            prev_item_done = item_done
        finish[task_id] = times
        slot_free[slot] = times[-1]

    return max(times[-1] for times in finish.values())


def round_robin_assignment(problem: ScheduleProblem) -> Dict[str, int]:
    """Tasks in topological order dealt across slots round-robin."""
    return {
        task_id: index % problem.num_slots
        for index, task_id in enumerate(problem.graph.topological_order)
    }


def least_loaded_assignment(problem: ScheduleProblem) -> Dict[str, int]:
    """Each task (topological order) goes to the least-loaded slot.

    Load is accumulated batch work; ties break toward the lowest index.
    """
    load = [0.0] * problem.num_slots
    assignment: Dict[str, int] = {}
    for task_id in problem.graph.topological_order:
        slot = min(range(problem.num_slots), key=lambda s: (load[s], s))
        assignment[task_id] = slot
        load[slot] += problem.batch_size * problem.graph.task(task_id).latency_ms
    return assignment


def stage_major_assignment(problem: ScheduleProblem) -> Dict[str, int]:
    """Same-stage tasks spread across distinct slots where possible.

    Mirrors how a human floorplans a layered graph: parallel siblings land
    on different slots so they actually run concurrently.
    """
    graph = problem.graph
    next_slot = 0
    assignment: Dict[str, int] = {}
    stage_slots: Dict[int, set] = {}
    for task_id in graph.topological_order:
        stage = graph.task(task_id).stage
        used = stage_slots.setdefault(stage, set())
        slot = next_slot % problem.num_slots
        # Avoid colliding with a sibling if any slot remains unused by the
        # stage; otherwise accept the collision.
        for offset in range(problem.num_slots):
            candidate = (next_slot + offset) % problem.num_slots
            if candidate not in used:
                slot = candidate
                break
        used.add(slot)
        assignment[task_id] = slot
        next_slot = slot + 1
    return assignment
