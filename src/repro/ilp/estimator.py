"""Fast latency estimation: heuristic assignments evaluated exactly.

This is the cheap stand-in for DML's ILP that Nimblock's saturation
analysis sweeps across slot counts. Three assignment heuristics are
evaluated with the exact forward pass of :mod:`repro.ilp.model` and the
best makespan wins; on the paper's feed-forward benchmarks this matches
the exact branch-and-bound answer on every instance small enough to verify
(see ``tests/test_ilp.py``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ilp.model import (
    ScheduleProblem,
    evaluate_assignment,
    least_loaded_assignment,
    round_robin_assignment,
    stage_major_assignment,
)


def heuristic_assignments(
    problem: ScheduleProblem,
) -> List[Tuple[str, Dict[str, int]]]:
    """The named candidate assignments the estimator evaluates."""
    return [
        ("round_robin", round_robin_assignment(problem)),
        ("least_loaded", least_loaded_assignment(problem)),
        ("stage_major", stage_major_assignment(problem)),
    ]


def estimate_makespan_ms(problem: ScheduleProblem) -> float:
    """Best makespan over the heuristic assignments."""
    return min(
        evaluate_assignment(problem, assignment)
        for _, assignment in heuristic_assignments(problem)
    )


def best_heuristic(problem: ScheduleProblem) -> Tuple[str, float]:
    """(heuristic name, makespan) of the winning assignment."""
    best_name = ""
    best_value = float("inf")
    for name, assignment in heuristic_assignments(problem):
        value = evaluate_assignment(problem, assignment)
        if value < best_value:
            best_name, best_value = name, value
    return best_name, best_value
