"""Exact branch-and-bound over task-to-slot assignments.

The paper keeps Gurobi off the critical path because exact solving is
expensive; this solver exists to (a) validate the heuristic estimator on
small instances and (b) let ``benchmarks/bench_overhead.py`` measure just
how expensive exactness is compared to a Nimblock scheduling decision.

Search space: every mapping of tasks (in topological order) to slots, with
slot-symmetry breaking (a task may only open slot ``s`` if slots
``0..s-1`` are already used). Each leaf is evaluated with the exact
canonical-dispatch forward pass; subtrees are pruned against the best
makespan found so far using the problem lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import SolverError
from repro.ilp.estimator import estimate_makespan_ms
from repro.ilp.model import ScheduleProblem, evaluate_assignment

#: Refuse instances whose assignment space exceeds this many leaves.
MAX_SEARCH_LEAVES = 2_000_000


@dataclass(frozen=True)
class SolverResult:
    """Outcome of an exact solve."""

    makespan_ms: float
    assignment: Dict[str, int]
    leaves_evaluated: int
    nodes_visited: int


class BranchAndBoundSolver:
    """Exhaustive assignment search with symmetry breaking and pruning."""

    def __init__(self, problem: ScheduleProblem) -> None:
        self._problem = problem
        space = problem.num_slots ** problem.num_tasks
        if space > MAX_SEARCH_LEAVES:
            raise SolverError(
                f"instance too large for exact search: {problem.num_tasks} "
                f"tasks x {problem.num_slots} slots = {space} leaves "
                f"(max {MAX_SEARCH_LEAVES}); use the estimator instead"
            )

    def solve(self) -> SolverResult:
        """Exact minimum-makespan assignment under canonical dispatch."""
        problem = self._problem
        order = problem.graph.topological_order
        lower_bound = problem.lower_bound_ms()

        # Seed the incumbent with the heuristic so pruning bites early.
        best_value = estimate_makespan_ms(problem)
        best_assignment: Optional[Dict[str, int]] = None
        stats = {"leaves": 0, "nodes": 0}
        assignment: Dict[str, int] = {}

        def recurse(index: int, slots_open: int) -> None:
            nonlocal best_value, best_assignment
            stats["nodes"] += 1
            if best_value <= lower_bound:
                return  # provably optimal already
            if index == len(order):
                stats["leaves"] += 1
                value = evaluate_assignment(problem, assignment)
                if value < best_value or best_assignment is None:
                    best_value = value
                    best_assignment = dict(assignment)
                return
            task_id = order[index]
            limit = min(problem.num_slots, slots_open + 1)
            for slot in range(limit):
                assignment[task_id] = slot
                recurse(index + 1, max(slots_open, slot + 1))
                del assignment[task_id]

        recurse(0, 0)

        if best_assignment is None:
            # Pruning ate every leaf: the heuristic incumbent is optimal.
            from repro.ilp.estimator import heuristic_assignments

            name, mapping = min(
                heuristic_assignments(problem),
                key=lambda pair: evaluate_assignment(problem, pair[1]),
            )
            best_assignment = mapping
        return SolverResult(
            makespan_ms=best_value,
            assignment=best_assignment,
            leaves_evaluated=stats["leaves"],
            nodes_visited=stats["nodes"],
        )
