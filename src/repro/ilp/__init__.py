"""Schedule-length analysis standing in for DML's Gurobi ILP (paper §4.2).

The paper transforms an application task graph (with partial-reconfiguration
nodes) into an ILP solved by Gurobi, purely to estimate application latency
as a function of the number of slots — the knee of that curve is the
*saturation point*. Gurobi is unavailable offline, so this package provides:

* :mod:`repro.ilp.model` — the pipelined-schedule problem and an exact
  forward-pass evaluator for a given task-to-slot assignment (respecting
  per-item dependencies, serialized reconfiguration, and slot exclusivity);
* :mod:`repro.ilp.estimator` — heuristic assignments (topological
  round-robin, least-loaded) evaluated exactly, returning the best;
* :mod:`repro.ilp.solver` — branch-and-bound over all assignments for
  small instances, used to validate the estimator and to benchmark the
  cost the paper avoids by keeping ILP solving off the critical path.
"""

from repro.ilp.model import ScheduleProblem, evaluate_assignment
from repro.ilp.estimator import estimate_makespan_ms, heuristic_assignments
from repro.ilp.solver import BranchAndBoundSolver, SolverResult

__all__ = [
    "ScheduleProblem",
    "evaluate_assignment",
    "estimate_makespan_ms",
    "heuristic_assignments",
    "BranchAndBoundSolver",
    "SolverResult",
]
