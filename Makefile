# Convenience targets for the Nimblock reproduction.

PYTHON ?= python

.PHONY: install test bench chaos reproduce report examples clean

install:
	pip install -e . && pip install -e '.[test]'

test:
	$(PYTHON) -m pytest tests/

# One regeneration pass over every table/figure bench (3 sequences).
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Fault-injection drill: every scheduler under the mixed chaos scenario.
chaos:
	$(PYTHON) -m repro.cli chaos --scenario mixed --fault-rate 0.05 --seed 1

# Full paper-scale regeneration: 10 sequences x 20 events, all experiments.
reproduce:
	REPRO_SEQUENCES=10 REPRO_EVENTS=20 $(PYTHON) -m repro.cli all

# Paper-vs-measured verdict table at paper scale.
report:
	REPRO_SEQUENCES=10 REPRO_EVENTS=20 $(PYTHON) -m repro.cli report

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f; done

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
