# Convenience targets for the Nimblock reproduction.

PYTHON ?= python
# Parallel sweep workers and persistent run cache for the heavy targets.
JOBS ?= 4
CACHE_DIR ?= .runcache

.PHONY: install test fast bench sweep perf chaos overload serve cluster tune paranoid trace stats reproduce report examples clean

install:
	pip install -e . && pip install -e '.[test]'

test:
	$(PYTHON) -m pytest tests/

# Fastest full regeneration: every experiment in metrics mode (streaming
# counters, no trace rows) at reduced scale, fanned out over $(JOBS).
# Output is byte-identical to the same scale in full mode.
fast:
	REPRO_SEQUENCES=2 REPRO_EVENTS=8 $(PYTHON) -m repro.cli all \
		--mode metrics --jobs $(JOBS)

# One regeneration pass over every table/figure bench (3 sequences).
# Fans cold simulations out over $(JOBS) workers and persists them under
# $(CACHE_DIR); a second run performs zero new simulations.
bench:
	REPRO_JOBS=$(JOBS) REPRO_CACHE_DIR=$(CACHE_DIR) \
		$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Time the serial/parallel/warm sweep modes; appends to BENCH_sweep.json.
sweep:
	$(PYTHON) benchmarks/bench_sweep.py --bench --jobs $(JOBS)

# Core-throughput regression guard + fast sweep timing (the CI perf job).
# bench_core also asserts O(1) PendingQueue removal; bench_invariants
# guards that the invariant checker is free when off and bounded when on.
perf:
	$(PYTHON) benchmarks/bench_core.py --guard
	$(PYTHON) benchmarks/bench_invariants.py --guard --fast
	$(PYTHON) benchmarks/bench_autotune.py --guard --fast
	$(PYTHON) benchmarks/bench_sweep.py --bench --fast --jobs 2

# Fault-injection drill: every scheduler under the mixed chaos scenario.
chaos:
	$(PYTHON) -m repro.cli chaos --scenario mixed --fault-rate 0.05 --seed 1

# Admission-policy drill: every policy on the overload regime at 4x rate.
overload:
	$(PYTHON) -m repro.cli overload --rate-multiplier 4 --seed 1

# Open-loop service drill: 20k Poisson arrivals through the service loop
# with streaming windowed SLO metrics (shed admission, nimblock).
serve:
	$(PYTHON) -m repro.cli serve --rate 2 --submissions 20000 --seed 1 \
		--jobs $(JOBS)

# Fleet drill: a heterogeneous 4-board cluster under the overload burst,
# board simulation sharded over $(JOBS) workers (byte-identical to serial).
cluster:
	$(PYTHON) -m repro.cli cluster --boards 4 --seed 1 --jobs $(JOBS)

# Closed-loop remediation drill: a 4x overload burst against a static
# baseline and an armed autotuner side by side; prints the frozen
# decision log and the post-apply SLO attainment comparison.
tune:
	$(PYTHON) -m repro.cli tune --rate 1 --burst 4 --seed 1 --jobs $(JOBS)

# Paranoid sweep: every scheduler plus full-rate chaos scenarios with
# the runtime invariant checker attached; any violation fails the target.
paranoid:
	$(PYTHON) benchmarks/bench_invariants.py --paranoid --fast

# Perfetto-loadable Chrome trace of a faulty stress run -> trace.json.
trace:
	$(PYTHON) -m repro.cli trace --format chrome --fault-rate 0.05 \
		--seed 1 --output trace.json

# Prometheus-style metrics for the stress scenario, fanned out.
stats:
	$(PYTHON) -m repro.cli stats --sequences 4 --jobs $(JOBS)

# Full paper-scale regeneration: 10 sequences x 20 events, all experiments.
reproduce:
	REPRO_SEQUENCES=10 REPRO_EVENTS=20 $(PYTHON) -m repro.cli all \
		--jobs $(JOBS) --cache-dir $(CACHE_DIR)

# Paper-vs-measured verdict table at paper scale.
report:
	REPRO_SEQUENCES=10 REPRO_EVENTS=20 $(PYTHON) -m repro.cli report \
		--jobs $(JOBS) --cache-dir $(CACHE_DIR)

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f; done

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks $(CACHE_DIR)
	find . -name __pycache__ -type d -exec rm -rf {} +
