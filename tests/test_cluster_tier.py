"""Edge-case coverage for the cluster tier (`repro.cluster`).

The five behaviours the ISSUE pins: single-board fleet equals a bare
hypervisor run byte-for-byte, submit-to-draining-board rejection,
failover re-placement after a permanent board fault, work-stealing
no-op on a balanced fleet, and deterministic least-loaded tie-breaking.
Plus the profile/power model and the fleet-boundary admission gate.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    Cluster,
    PLACEMENT_POLICIES,
    ZCU106_BOARD,
    BoardProfile,
    board_label,
    board_profile,
    fleet_profiles,
    make_placement,
    trace_digest,
)
from repro.errors import ClusterError
from repro.hypervisor.hypervisor import Hypervisor
from repro.schedulers.registry import make_scheduler
from repro.workload.events import EventSpec
from repro.workload.generator import EventGenerator


def stream(seed: int = 11, num_events: int = 8):
    return EventGenerator(seed).sequence(num_events=num_events, label="t")


def same_app_events(count: int, benchmark: str = "lenet"):
    """Identical applications at identical spacing (forces estimate ties)."""
    return [
        EventSpec(benchmark, 2, 1, 100.0 * i) for i in range(count)
    ]


# ---------------------------------------------------------------------------
# Profiles and the power model
# ---------------------------------------------------------------------------
class TestBoardProfiles:
    def test_catalogue_lookup_and_unknown(self):
        assert board_profile("zcu106") is ZCU106_BOARD
        with pytest.raises(ClusterError, match="unknown board profile"):
            board_profile("nope")

    def test_fleet_mix_rotates_deterministically(self):
        fleet = fleet_profiles(7)
        assert [p.name for p in fleet] == [
            "zcu106", "edge", "hpc", "zcu106", "edge", "hpc", "zcu106",
        ]
        assert fleet_profiles(7) == fleet
        assert all(p.name == "edge" for p in fleet_profiles(3, mix=("edge",)))

    def test_power_slot_budget_caps_dark_silicon(self):
        # hpc: (60 - 15) // 4.5 = 10 powered slots out of 16 physical.
        assert board_profile("hpc").power_slot_budget() == 10
        # zcu106's envelope covers the full complement.
        assert ZCU106_BOARD.power_slot_budget() == ZCU106_BOARD.num_slots

    def test_profile_validation(self):
        with pytest.raises(ClusterError):
            BoardProfile(name="")
        with pytest.raises(ClusterError):
            BoardProfile(name="x", num_slots=0)
        with pytest.raises(ClusterError):
            BoardProfile(name="x", power_cap_w=5.0, idle_power_w=8.0)

    def test_system_config_keeps_fleet_policy_knobs(self):
        from repro.config import SystemConfig

        base = SystemConfig(token_alpha=0.5)
        config = board_profile("edge").system_config(base)
        assert config.num_slots == 4
        assert config.reconfig_ms == 120.0
        assert config.token_alpha == 0.5

    def test_fleet_profiles_validation(self):
        with pytest.raises(ClusterError):
            fleet_profiles(0)
        with pytest.raises(ClusterError):
            fleet_profiles(2, mix=())


# ---------------------------------------------------------------------------
# Placement policies
# ---------------------------------------------------------------------------
class TestPlacementPolicies:
    def test_registry_complete_and_unknown_rejected(self):
        assert PLACEMENT_POLICIES == (
            "round_robin", "least_loaded", "affinity", "power_aware",
        )
        for name in PLACEMENT_POLICIES:
            assert make_placement(name).name == name
        with pytest.raises(ClusterError, match="unknown placement"):
            make_placement("random")

    def test_least_loaded_tie_break_is_pinned(self):
        # Two identical boards, identical applications: ties always go to
        # the lowest index, so placements alternate 0, 1, 0, 1...
        fleet = Cluster(
            fleet_profiles(2, mix=("zcu106",)), placement="least_loaded"
        )
        decisions = fleet.submit_sequence(same_app_events(6))
        assert [d.board for d in decisions] == [0, 1, 0, 1, 0, 1]

    def test_round_robin_cycles_and_skips_draining(self):
        fleet = Cluster(
            fleet_profiles(3, mix=("zcu106",)), placement="round_robin"
        )
        events = same_app_events(5)
        assert fleet.submit(events[0]).board == 0
        assert fleet.submit(events[1]).board == 1
        fleet.drain(2)
        assert fleet.submit(events[2]).board == 0
        assert fleet.submit(events[3]).board == 1
        assert fleet.submit(events[4]).board == 0

    def test_affinity_prefers_warm_board(self):
        fleet = Cluster(
            fleet_profiles(3, mix=("zcu106",)), placement="affinity"
        )
        first = fleet.submit(EventSpec("imgc", 2, 1, 0.0))
        # The same benchmark lands on the warm board despite its load...
        again = fleet.submit(EventSpec("imgc", 2, 1, 10.0))
        assert again.board == first.board
        # ...while a cold benchmark falls back to least-loaded.
        cold = fleet.submit(EventSpec("lenet", 2, 1, 20.0))
        assert cold.board != first.board

    def test_power_aware_diverges_on_power_capped_board(self):
        # hpc has 16 physical slots but powers only 10: least-loaded
        # over-credits it, power-aware does not.
        profiles = (board_profile("zcu106"), board_profile("hpc"))
        events = same_app_events(8, benchmark="3dr")
        ll = Cluster(profiles, placement="least_loaded")
        pa = Cluster(profiles, placement="power_aware")
        ll_boards = [d.board for d in ll.submit_sequence(events)]
        pa_boards = [d.board for d in pa.submit_sequence(events)]
        assert ll_boards != pa_boards
        # Power-aware treats both as 10-slot boards; cheaper joules win
        # ties, so the zcu106 (3.5 W/slot vs 4.5) gets at least half.
        assert pa_boards.count(0) >= pa_boards.count(1)


# ---------------------------------------------------------------------------
# Single-board equivalence
# ---------------------------------------------------------------------------
class TestSingleBoardEquivalence:
    def test_single_board_fleet_equals_bare_hypervisor(self):
        events = stream(seed=5, num_events=8)
        fleet = Cluster((ZCU106_BOARD,), scheduler="nimblock")
        fleet.submit_sequence(events)
        report = fleet.run(jobs=1)

        bare = Hypervisor(
            make_scheduler("nimblock"), config=ZCU106_BOARD.system_config()
        )
        for spec in events:
            bare.submit(spec.to_request())
        bare.run()

        assert report.boards[0]["trace_digest"] == trace_digest(
            bare.trace, board_label(0)
        )
        assert report.retired == len(bare.retired)
        assert report.boards[0]["trace_events"] == len(bare.trace)


# ---------------------------------------------------------------------------
# Operational verbs: drain, failover, work stealing
# ---------------------------------------------------------------------------
class TestOperationalVerbs:
    def test_submit_to_draining_board_rejected(self):
        fleet = Cluster(fleet_profiles(2, mix=("zcu106",)))
        fleet.drain(1)
        with pytest.raises(ClusterError, match="draining"):
            fleet.submit(EventSpec("lenet", 1, 1, 0.0), board=1)
        # Untargeted submits keep flowing to the remaining board.
        assert fleet.submit(EventSpec("lenet", 1, 1, 0.0)).board == 0

    def test_cannot_drain_or_fail_last_board(self):
        fleet = Cluster(fleet_profiles(2, mix=("zcu106",)))
        fleet.drain(0)
        with pytest.raises(ClusterError, match="last eligible"):
            fleet.drain(1)
        with pytest.raises(ClusterError, match="last eligible"):
            fleet.fail_board(1)

    def test_failover_replaces_queued_work(self):
        fleet = Cluster(
            fleet_profiles(3, mix=("zcu106",)), placement="round_robin"
        )
        events = stream(seed=3, num_events=9)
        fleet.submit_sequence(events)
        queued = len(fleet.board_queue(2))
        assert queued > 0
        moved = fleet.fail_board(2)
        assert len(moved) == queued
        assert all(d.board != 2 for d in moved)
        assert fleet.board_queue(2) == []
        # The failed board simulates nothing; nothing is lost fleet-wide.
        report = fleet.run(jobs=2)
        assert report.boards[2]["submitted"] == 0
        assert report.retired == len(events)
        with pytest.raises(ClusterError, match="already failed"):
            fleet.fail_board(2)

    def test_rebalance_noop_on_balanced_fleet(self):
        fleet = Cluster(
            fleet_profiles(3, mix=("zcu106",)), placement="least_loaded"
        )
        fleet.submit_sequence(same_app_events(9))
        before = [fleet.board_load_ms(i) for i in range(3)]
        assert fleet.rebalance() == 0
        assert [fleet.board_load_ms(i) for i in range(3)] == before

    def test_rebalance_moves_work_off_hot_board(self):
        fleet = Cluster(
            fleet_profiles(3, mix=("zcu106",)), placement="round_robin"
        )
        for spec in same_app_events(9):
            fleet.submit(spec, board=0)
        spread_before = fleet.board_load_ms(0) - fleet.board_load_ms(1)
        moves = fleet.rebalance()
        assert moves > 0
        spread_after = max(
            fleet.board_load_ms(i) for i in range(3)
        ) - min(fleet.board_load_ms(i) for i in range(3))
        assert spread_after < spread_before
        report = fleet.run(jobs=1)
        assert report.retired == 9
        assert report.to_dict()["fleet"]["steal_moves"] == moves


# ---------------------------------------------------------------------------
# Fleet-boundary admission
# ---------------------------------------------------------------------------
class TestFleetAdmission:
    def burst(self, count: int = 30):
        return [EventSpec("lenet", 2, 1, float(i)) for i in range(count)]

    def heavy_burst(self, count: int = 60):
        """Arrivals fast and heavy enough to exhaust reject retries."""
        return [EventSpec("3dr", 4, 1, 0.5 * i) for i in range(count)]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ClusterError, match="unknown fleet admission"):
            Cluster(fleet_profiles(1), admission="nope")

    def test_unbounded_counts_but_admits_all(self):
        fleet = Cluster(fleet_profiles(1), admission="unbounded")
        fleet.submit_sequence(self.burst(10))
        assert fleet.admission_stats.submitted == 10
        assert fleet.admission_stats.admitted == 10

    def test_reject_drops_past_fleet_capacity(self):
        fleet = Cluster(
            fleet_profiles(1, mix=("zcu106",)), admission="reject"
        )
        decisions = fleet.submit_sequence(self.heavy_burst())
        stats = fleet.admission_stats
        assert stats.dropped > 0
        assert stats.rejections >= stats.dropped
        assert stats.admitted == len(decisions)
        assert stats.admitted + stats.dropped == stats.submitted

    def test_shed_turns_arrivals_away_at_ingress(self):
        fleet = Cluster(
            fleet_profiles(1, mix=("zcu106",)), admission="shed"
        )
        decisions = fleet.submit_sequence(self.burst(30))
        stats = fleet.admission_stats
        assert stats.shed > 0
        assert stats.admitted == len(decisions)
        assert stats.admitted + stats.shed == stats.submitted

    def test_degrade_routes_to_per_board_controllers(self):
        fleet = Cluster(fleet_profiles(2), admission="degrade")
        # The boundary admits everything; boards carry the controller.
        fleet.submit_sequence(self.burst(8))
        assert fleet.admission_stats.admitted == 8
        assert all(task[6] == "degrade" for task in fleet.board_tasks())
        report = fleet.run(jobs=2)
        assert report.retired == 8

    def test_arrival_order_enforced(self):
        fleet = Cluster(fleet_profiles(1))
        fleet.submit(EventSpec("lenet", 1, 1, 100.0))
        with pytest.raises(ClusterError, match="arrivals must be"):
            fleet.submit(EventSpec("lenet", 1, 1, 50.0))


# ---------------------------------------------------------------------------
# Report plumbing
# ---------------------------------------------------------------------------
class TestClusterReport:
    def test_empty_boards_merge_cleanly(self):
        fleet = Cluster(fleet_profiles(3, mix=("zcu106",)))
        fleet.submit(EventSpec("lenet", 1, 1, 0.0))
        report = fleet.run(jobs=1)
        assert report.retired == 1
        assert sum(p["submitted"] for p in report.boards) == 1
        assert report.makespan_ms > 0
        assert report.throughput_items_per_s > 0
        snapshot = report.to_dict()
        assert snapshot["fleet"]["num_boards"] == 3
        assert len(report.snapshot_digest()) == 64

    def test_empty_cluster_requires_a_board(self):
        with pytest.raises(ClusterError, match="at least one board"):
            Cluster(())
