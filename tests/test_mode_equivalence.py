"""Mode equivalence: ``mode="metrics"`` aggregates equal full-mode folds.

The run-mode contract (repro.modes) is that ``mode`` only changes *what
is stored*, never what happens: engine event streams, retired-app
results, observe counters/histograms and service window sketches are
identical between ``mode="full"`` and ``mode="metrics"`` — the latter
simply never materializes trace rows. This suite pins the contract:

* observe snapshots ``to_dict``-exact for every registry scheduler;
* service report payloads (windowed quantile sketches included) exact
  for every registry scheduler;
* one full-rate chaos run and one 4x-overload run, snapshot-exact;
* row-reading actions raise a clear :class:`ExperimentError` that names
  the fix (rerun with ``mode="full"``).
"""

from __future__ import annotations

import pytest

import repro
from repro.admission.controller import AdmissionController
from repro.admission.watchdog import Watchdog
from repro.errors import ExperimentError
from repro.experiments.ext_overload import (
    OVERLOAD_WORKLOAD,
    study_sequence,
)
from repro.experiments.ext_service import CAPACITY_SCHEDULERS
from repro.observe.aggregate import observed_run
from repro.observe.instrument import snapshot_run
from repro.schedulers.registry import make_scheduler
from repro.workload.scenarios import (
    MIXED_FAULTS,
    STRESS,
    scenario_sequence,
)

#: Small but non-trivial stimulus: enough events for preemptions,
#: pipelining and multi-batch items on every scheduler.
SEQUENCE = scenario_sequence(STRESS, seed=5, num_events=12)


def _observed(scheduler: str, mode: str, faults=None):
    hypervisor, observer = observed_run(
        scheduler, SEQUENCE, fault_config=faults, mode=mode
    )
    return hypervisor, observer.snapshot()


class TestObserveSnapshotEquivalence:
    @pytest.mark.parametrize("scheduler", CAPACITY_SCHEDULERS)
    def test_snapshot_exact_per_scheduler(self, scheduler):
        """Counters AND histograms match full-mode folds bit-for-bit."""
        hv_full, full = _observed(scheduler, "full")
        hv_metrics, metrics = _observed(scheduler, "metrics")
        assert metrics == full
        assert hv_metrics.results() == hv_full.results()
        assert hv_metrics.engine.processed == hv_full.engine.processed

    def test_full_rate_chaos_snapshot_exact(self):
        """The full-strength mixed-chaos drill folds identically."""
        faults = MIXED_FAULTS.fault_config(1.0, seed=11)
        hv_full, full = _observed("nimblock", "full", faults=faults)
        _, metrics = _observed("nimblock", "metrics", faults=faults)
        assert metrics == full
        # The drill must actually have injected something, or the
        # recovery/fault legs of the fold were never exercised.
        assert full["counters"]["nimblock_slot_faults_total"]["value"] > 0

    def test_4x_overload_snapshot_exact(self):
        """Admission control + watchdog at 4x congestion, both modes."""
        sequence = study_sequence(
            OVERLOAD_WORKLOAD, seed=3, num_events=48, rate_multiplier=4.0
        )
        snapshots = {}
        for mode in ("full", "metrics"):
            hypervisor = repro.Hypervisor(
                make_scheduler("nimblock"),
                admission=AdmissionController("shed", seed=7),
                watchdog=Watchdog(),
                mode=mode,
            )
            for request in sequence.to_requests():
                hypervisor.submit(request)
            hypervisor.run()
            snapshots[mode] = snapshot_run(hypervisor)
        assert snapshots["metrics"] == snapshots["full"]
        shed = snapshots["full"]["counters"]["nimblock_apps_shed_total"]
        rejected = snapshots["full"]["counters"][
            "nimblock_apps_rejected_total"
        ]
        assert shed["value"] + rejected["value"] > 0, (
            "4x congestion never tripped admission control — the "
            "overload leg of the equivalence check is vacuous"
        )


class TestServiceWindowEquivalence:
    @pytest.mark.parametrize("scheduler", CAPACITY_SCHEDULERS)
    def test_service_payload_exact_per_scheduler(self, scheduler):
        """Windowed sketches and counters are mode-independent."""
        from repro.experiments.parallel import service_cells

        tasks = [
            (scheduler, "shed", 2.0, 0.0, 9, 60, 15_000.0, mode)
            for mode in ("full", "metrics")
        ]
        full, metrics = service_cells(tasks, jobs=1)
        assert metrics == full


class TestMetricsModeRefusesRowReads:
    def test_trace_export_raises(self):
        run = repro.simulate("nimblock", seed=2, num_events=6,
                             mode="metrics")
        with pytest.raises(ExperimentError, match="mode='full'"):
            run.trace.events
        with pytest.raises(ExperimentError, match="requires trace rows"):
            list(run.trace)

    def test_span_pairing_raises(self):
        run = repro.simulate("nimblock", seed=2, num_events=6,
                             mode="metrics")
        with pytest.raises(ExperimentError, match="mode='full'"):
            run.spans()

    def test_aggregate_reads_still_work(self):
        run = repro.simulate("nimblock", seed=2, num_events=6,
                             mode="metrics")
        trace = run.trace
        assert len(trace) > 0
        assert trace.end_ms > trace.start_ms
        assert trace.run_busy_ms() > 0

    def test_unknown_mode_rejected_uniformly(self):
        with pytest.raises(ExperimentError, match="unknown run mode"):
            repro.simulate("nimblock", num_events=4, mode="turbo")
        with pytest.raises(ExperimentError, match="unknown run mode"):
            repro.serve("nimblock", submissions=4, mode="turbo")
