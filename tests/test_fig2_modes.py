"""Tests for the Figure 2 sharing-modes demonstration."""

from __future__ import annotations

from repro.experiments import fig2_modes


class TestFig2:
    def test_modes_strictly_improve(self):
        result = fig2_modes.run()
        labels = [label for label, _, _ in fig2_modes.MODES]
        makespans = [result.makespan(label) for label in labels]
        assert makespans[0] > makespans[1] > makespans[2]

    def test_timelines_render_all_modes(self):
        result = fig2_modes.run()
        text = fig2_modes.format_result(result)
        assert "(a) temporal multiplexing" in text
        assert "(b) task-parallel sharing" in text
        assert "(c) fine-grained pipelined sharing" in text
        assert "#" in text and "A" in text and "B" in text

    def test_pipelined_mode_overlaps_applications(self):
        result = fig2_modes.run()
        pipelined = result.timelines["(c) fine-grained pipelined sharing"]
        # Both applications appear in the pipelined timeline...
        assert "A" in pipelined and "B" in pipelined
        # ...and mode (a) serializes everything on one slot.
        serialized = result.timelines["(a) temporal multiplexing"]
        assert serialized.count("slot") == 1
