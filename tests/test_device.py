"""Tests for slots and the configuration port (repro.overlay.device)."""

from __future__ import annotations

import pytest

from repro.errors import ReconfigurationError, SlotStateError
from repro.overlay.device import FPGADevice, Slot, SlotPhase
from repro.sim.engine import SimulationEngine


class TestSlotStateMachine:
    def test_initially_empty_and_free(self):
        slot = Slot(0)
        assert slot.phase == SlotPhase.EMPTY
        assert slot.is_free

    def test_full_lifecycle(self):
        slot = Slot(0)
        slot.begin_reconfig()
        assert slot.phase == SlotPhase.RECONFIGURING
        assert not slot.is_free
        slot.host("task")
        assert slot.phase == SlotPhase.OCCUPIED
        assert slot.occupant == "task"
        slot.start_item()
        assert slot.busy
        slot.finish_item()
        slot.clear()
        assert slot.is_free

    def test_host_requires_reconfiguring(self):
        with pytest.raises(SlotStateError, match="cannot host"):
            Slot(0).host("x")

    def test_double_reconfig_rejected(self):
        slot = Slot(0)
        slot.begin_reconfig()
        with pytest.raises(SlotStateError, match="already reconfiguring"):
            slot.begin_reconfig()

    def test_reconfig_while_busy_rejected(self):
        slot = Slot(0)
        slot.begin_reconfig()
        slot.host("t")
        slot.start_item()
        with pytest.raises(SlotStateError, match="while running"):
            slot.begin_reconfig()

    def test_clear_requires_occupied_idle(self):
        slot = Slot(0)
        with pytest.raises(SlotStateError, match="cannot clear"):
            slot.clear()
        slot.begin_reconfig()
        slot.host("t")
        slot.start_item()
        with pytest.raises(SlotStateError, match="while running"):
            slot.clear()

    def test_start_item_requires_occupied(self):
        with pytest.raises(SlotStateError, match="cannot run items"):
            Slot(0).start_item()

    def test_double_start_rejected(self):
        slot = Slot(0)
        slot.begin_reconfig()
        slot.host("t")
        slot.start_item()
        with pytest.raises(SlotStateError, match="already running"):
            slot.start_item()

    def test_finish_without_start_rejected(self):
        with pytest.raises(SlotStateError, match="never started"):
            Slot(0).finish_item()


class TestReconfigurationPort:
    def test_serializes_requests(self):
        engine = SimulationEngine()
        device = FPGADevice(engine, 2)
        done = []
        device.port.request(device.slot(0), 80.0, lambda now: done.append((0, now)))
        device.port.request(device.slot(1), 80.0, lambda now: done.append((1, now)))
        assert device.port.is_busy
        assert device.port.queue_depth == 1
        engine.run()
        assert done == [(0, 80.0), (1, 160.0)]
        assert device.port.total_reconfigs == 2
        assert device.port.busy_ms == 160.0

    def test_slot_enters_reconfiguring_immediately_even_if_queued(self):
        engine = SimulationEngine()
        device = FPGADevice(engine, 2)
        device.port.request(device.slot(0), 80.0, lambda now: None)
        device.port.request(device.slot(1), 80.0, lambda now: None)
        assert device.slot(1).phase == SlotPhase.RECONFIGURING

    def test_rejects_negative_duration(self):
        engine = SimulationEngine()
        device = FPGADevice(engine, 1)
        with pytest.raises(ReconfigurationError, match="negative"):
            device.port.request(device.slot(0), -1.0, lambda now: None)

    def test_zero_duration_completes_immediately_on_run(self):
        engine = SimulationEngine()
        device = FPGADevice(engine, 1)
        done = []
        device.port.request(device.slot(0), 0.0, lambda now: done.append(now))
        engine.run()
        assert done == [0.0]


class TestDevice:
    def test_slot_access_and_bounds(self):
        device = FPGADevice(SimulationEngine(), 3)
        assert device.num_slots == 3
        assert device.slot(2).index == 2
        with pytest.raises(SlotStateError, match="out of range"):
            device.slot(3)

    def test_rejects_zero_slots(self):
        with pytest.raises(SlotStateError, match="num_slots"):
            FPGADevice(SimulationEngine(), 0)

    def test_free_and_occupied_tracking(self):
        engine = SimulationEngine()
        device = FPGADevice(engine, 2)
        assert len(device.free_slots()) == 2
        assert device.utilization() == 0.0
        device.port.request(device.slot(0), 10.0, lambda now: None)
        assert len(device.free_slots()) == 1
        assert device.utilization() == 0.5
        engine.run()
        device.slot(0).host("t")
        assert device.occupied_slots() == [device.slot(0)]
