"""Tests for ASCII plotting and board-timeline rendering."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.metrics.ascii_plot import render_bars, render_curves
from repro.sim.timeline import render_timeline
from repro.taskgraph.builders import chain_graph
from tests.conftest import request, run_named, small_config


class TestCurves:
    def test_renders_all_series_markers(self):
        chart = render_curves(
            [1.0, 2.0, 3.0],
            {"nimblock": [1.0, 0.5, 0.0], "prema": [1.0, 1.0, 0.5]},
        )
        # Markers derive from series names: N=nimblock, P=prema.
        assert "N=nimblock" in chart
        assert "P=prema" in chart
        body = "\n".join(chart.splitlines()[:-2])
        assert "N" in body and "P" in body

    def test_marker_collision_falls_back(self):
        chart = render_curves(
            [1.0, 2.0],
            {"prema": [1.0, 0.5], "prio": [0.5, 1.0]},
        )
        assert "P=prema" in chart
        assert "R=prio" in chart  # P taken -> next letter of the name

    def test_y_axis_spans_zero_to_max(self):
        chart = render_curves([0.0, 1.0], {"s": [0.0, 2.0]})
        lines = chart.splitlines()
        assert lines[0].strip().startswith("2.00")
        assert any(line.strip().startswith("0.00") for line in lines)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            render_curves([], {"s": []})
        with pytest.raises(ExperimentError):
            render_curves([1.0], {})
        with pytest.raises(ExperimentError):
            render_curves([1.0, 2.0], {"s": [1.0]})
        with pytest.raises(ExperimentError):
            render_curves([1.0], {"s": [1.0]}, width=2)


class TestBars:
    def test_bars_scale_to_peak(self):
        chart = render_bars(["a", "bb"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_zero_value_renders_empty_bar(self):
        chart = render_bars(["z"], [0.0])
        assert "#" not in chart

    def test_validation(self):
        with pytest.raises(ExperimentError):
            render_bars(["a"], [1.0, 2.0])
        with pytest.raises(ExperimentError):
            render_bars([], [])
        with pytest.raises(ExperimentError):
            render_bars(["a"], [-1.0])


class TestTimeline:
    @pytest.fixture
    def traced_run(self):
        graph = chain_graph("c", [100.0, 100.0])
        hv, _ = run_named(
            "baseline", [request(graph, batch_size=2)], small_config()
        )
        return hv

    def test_timeline_shows_reconfig_and_items(self, traced_run):
        art = render_timeline(traced_run.trace, num_slots=2, width=60)
        assert "#" in art          # reconfiguration
        assert "A" in art          # app 0 items
        assert "slot  0" in art and "slot  1" in art

    def test_window_clipping(self, traced_run):
        art = render_timeline(
            traced_run.trace, num_slots=2, start_ms=0.0, end_ms=80.0,
            width=40,
        )
        assert "A" not in art  # no items execute before the first config ends

    def test_validation(self, traced_run):
        with pytest.raises(ExperimentError):
            render_timeline(traced_run.trace, num_slots=0)
        with pytest.raises(ExperimentError):
            render_timeline(traced_run.trace, num_slots=2, width=4)
        with pytest.raises(ExperimentError):
            render_timeline(
                traced_run.trace, num_slots=2, start_ms=5.0, end_ms=5.0
            )
