"""Tests for batching strategies and the fairness metrics."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError, WorkloadError
from repro.experiments import ext_batching
from repro.metrics.fairness import (
    jain_index,
    priority_speedups,
    sharing_fairness,
)
from repro.taskgraph.builders import chain_graph
from repro.workload.batching import (
    chunks,
    num_requests,
    per_item,
    requests_for,
    whole,
)
from tests.test_results import make_result


class TestStrategies:
    def test_whole_is_one_request(self):
        assert whole().split(30) == [30]
        assert num_requests(30, whole()) == 1

    def test_chunks_cover_exactly(self):
        assert chunks(15).split(30) == [15, 15]
        assert chunks(7).split(30) == [7, 7, 7, 7, 2]
        assert sum(chunks(7).split(30)) == 30
        assert num_requests(30, chunks(7)) == 5

    def test_per_item(self):
        assert per_item().split(4) == [1, 1, 1, 1]

    def test_oversized_chunk_collapses_to_whole(self):
        assert chunks(50).split(30) == [30]

    def test_validation(self):
        with pytest.raises(WorkloadError):
            chunks(0)
        with pytest.raises(WorkloadError):
            whole().split(0)

    def test_requests_share_arrival(self):
        graph = chain_graph("g", [10.0])
        reqs = requests_for("g", graph, 10, chunks(4), arrival_ms=5.0)
        assert [r.batch_size for r in reqs] == [4, 4, 2]
        assert all(r.arrival_ms == 5.0 for r in reqs)


class TestBatchingExperiment:
    def test_fragmentation_hurts(self):
        result = ext_batching.run(
            benchmarks=("imgc",), total_items=10,
        )
        assert result.fragmentation_penalty("imgc") > 1.5
        # More requests -> more reconfigurations.
        assert result.reconfigs[("imgc", "per_item")] > result.reconfigs[
            ("imgc", "whole")
        ]
        assert "batching" in ext_batching.format_result(result)


class TestFairness:
    def test_jain_bounds(self):
        assert jain_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        skewed = jain_index([10.0, 0.0001, 0.0001])
        assert skewed == pytest.approx(1 / 3, rel=0.01)

    def test_jain_validation(self):
        with pytest.raises(ExperimentError):
            jain_index([])
        with pytest.raises(ExperimentError):
            jain_index([-1.0])
        with pytest.raises(ExperimentError):
            jain_index([0.0, 0.0])

    def _paired(self, base_r, other_r, priorities):
        base = [
            make_result(app_id=i, arrival_ms=0.0, retire_ms=r, priority=p)
            for i, (r, p) in enumerate(zip(base_r, priorities))
        ]
        other = [
            make_result(app_id=i, arrival_ms=0.0, retire_ms=r, priority=p)
            for i, (r, p) in enumerate(zip(other_r, priorities))
        ]
        return base, other

    def test_sharing_fairness_of_uniform_speedup(self):
        base, other = self._paired(
            [100.0, 200.0], [50.0, 100.0], [1, 9]
        )
        assert sharing_fairness(base, other) == pytest.approx(1.0)

    def test_priority_speedups_grouping(self):
        base, other = self._paired(
            [100.0, 100.0, 100.0], [50.0, 25.0, 100.0], [1, 9, 9]
        )
        speedups = priority_speedups(base, other)
        assert speedups[1] == pytest.approx(2.0)
        assert speedups[9] == pytest.approx((4.0 + 1.0) / 2)
