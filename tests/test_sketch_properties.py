"""Property-based tests (hypothesis) for the streaming quantile sketch.

Pins the two guarantees the service tier's metrics rest on:

* every sketch quantile is within the documented relative-error bound
  ``alpha`` of the exact :func:`repro.metrics.response.percentile` over
  the same samples (both use the numpy-'linear' rank convention, so the
  bound survives the interpolation step);
* merges are exact — associative and order-independent down to the
  serialized payload — which is what makes ``--jobs N`` windowed metrics
  byte-identical to serial runs.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.metrics.response import percentile
from repro.service.sketch import (
    DEFAULT_ALPHA,
    QuantileSketch,
    SketchError,
    merge_sketches,
)
from repro.service.windows import WindowedMetrics

#: In-range positive samples (the sketch's representable band).
sample = st.floats(
    min_value=0.01, max_value=1e9,
    allow_nan=False, allow_infinity=False,
)
samples = st.lists(sample, min_size=1, max_size=300)

#: Samples that may include exact zeros (handled outside the log buckets).
maybe_zero_sample = st.one_of(st.just(0.0), sample)


@settings(max_examples=120, suppress_health_check=[HealthCheck.too_slow])
@given(values=samples, pct=st.floats(min_value=0.0, max_value=100.0))
def test_percentile_within_documented_relative_error(values, pct):
    sketch = QuantileSketch()
    sketch.extend(values)
    exact = percentile(values, pct)
    estimate = sketch.percentile(pct)
    # Relative error bound alpha, plus float-arithmetic headroom.
    assert abs(estimate - exact) <= DEFAULT_ALPHA * exact + 1e-9


@settings(max_examples=60)
@given(values=st.lists(maybe_zero_sample, min_size=1, max_size=200),
       pct=st.sampled_from([0.0, 25.0, 50.0, 90.0, 99.0, 100.0]))
def test_zeros_are_exact_and_keep_the_bound(values, pct):
    sketch = QuantileSketch()
    sketch.extend(values)
    exact = percentile(values, pct)
    estimate = sketch.percentile(pct)
    assert abs(estimate - exact) <= DEFAULT_ALPHA * exact + 1e-9


@settings(max_examples=60)
@given(a=samples, b=samples, c=samples)
def test_merge_is_associative_and_commutative(a, b, c):
    def sketch_of(*parts):
        sketch = QuantileSketch()
        for part in parts:
            sketch.extend(part)
        return sketch

    left = sketch_of(a).merge(sketch_of(b)).merge(sketch_of(c))
    right = sketch_of(a).merge(sketch_of(b).merge(sketch_of(c)))
    swapped = sketch_of(c).merge(sketch_of(a)).merge(sketch_of(b))
    assert left.to_dict() == right.to_dict() == swapped.to_dict()
    # And a merged sketch equals one fed the concatenated stream.
    assert left.to_dict() == sketch_of(a, b, c).to_dict()


@settings(max_examples=60)
@given(values=samples)
def test_serialization_round_trips_bytes(values):
    sketch = QuantileSketch()
    sketch.extend(values)
    clone = QuantileSketch.from_dict(sketch.to_dict())
    assert clone == sketch
    assert clone.to_dict() == sketch.to_dict()


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
@given(
    observations=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=120_000.0,
                      allow_nan=False, allow_infinity=False),
            sample,
        ),
        min_size=1, max_size=120,
    ),
    split=st.integers(min_value=0, max_value=120),
)
def test_window_shard_merge_is_order_independent(observations, split):
    """Two shards of one observation stream merge to the serial result,
    whichever side is merged into which."""
    split = min(split, len(observations))

    def windowed(part):
        metrics = WindowedMetrics(window_ms=10_000.0)
        for t_ms, response_ms in part:
            metrics.observe_arrival(t_ms)
            metrics.observe_completion(t_ms, response_ms)
        return metrics

    serial = windowed(observations)
    a, b = windowed(observations[:split]), windowed(observations[split:])
    ab = windowed(observations[:split]).merge(b)
    ba = windowed(observations[split:]).merge(a)
    assert ab.to_dict() == serial.to_dict()
    assert ba.to_dict() == serial.to_dict()


class TestSketchValidation:
    def test_rejects_bad_alpha_and_range(self):
        with pytest.raises(SketchError, match="alpha"):
            QuantileSketch(alpha=1.5)
        with pytest.raises(SketchError, match="min_value"):
            QuantileSketch(min_value=-1.0)

    def test_rejects_negative_and_nan_samples(self):
        sketch = QuantileSketch()
        with pytest.raises(SketchError):
            sketch.add(-1.0)
        with pytest.raises(SketchError):
            sketch.add(float("nan"))

    def test_rejects_incompatible_merge(self):
        with pytest.raises(SketchError, match="parameters"):
            QuantileSketch(alpha=0.01).merge(QuantileSketch(alpha=0.02))

    def test_empty_sketch_quantile_is_nan(self):
        assert math.isnan(QuantileSketch().quantile(0.5))

    def test_clamping_bounds_memory_not_correctness_elsewhere(self):
        sketch = QuantileSketch(min_value=1.0, max_value=100.0)
        sketch.add(0.5)
        sketch.add(1e6)
        assert sketch.clamped == 2
        assert sketch.count == 2
        assert 0.9 <= sketch.quantile(0.0) <= 1.1

    def test_merge_sketches_helper(self):
        parts = []
        for base in (1.0, 10.0):
            sketch = QuantileSketch()
            sketch.extend([base, base * 2])
            parts.append(sketch)
        merged = merge_sketches(parts)
        assert merged.count == 4
        assert merge_sketches([]) is None


#: (value, multiplicity) pairs for the bulk-accumulation property.
weighted_samples = st.lists(
    st.tuples(sample, st.integers(min_value=0, max_value=25)),
    min_size=1, max_size=60,
)


class TestBulkBucketAccumulation:
    """The O(1) bulk path must be bit-equal to singleton inserts."""

    @settings(max_examples=120, suppress_health_check=[HealthCheck.too_slow])
    @given(pairs=weighted_samples)
    def test_bulk_equals_singleton_loop_to_dict_exact(self, pairs):
        singles = QuantileSketch()
        bulk = QuantileSketch()
        for value, multiplicity in pairs:
            for _ in range(multiplicity):
                singles.add(value)
            bulk.add_bucket_counts(bulk.index_of(value), multiplicity)
        assert singles.to_dict() == bulk.to_dict()

    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    @given(pairs=weighted_samples)
    def test_bulk_is_merge_order_invariant(self, pairs):
        forward = QuantileSketch()
        for value, multiplicity in pairs:
            forward.add_bucket_counts(forward.index_of(value), multiplicity)
        backward = QuantileSketch()
        for value, multiplicity in reversed(pairs):
            backward.add_bucket_counts(
                backward.index_of(value), multiplicity
            )
        assert forward.to_dict() == backward.to_dict()
        # ...and merging bulk-built shards commutes exactly.
        merged_ab = forward.copy().merge(backward)
        merged_ba = backward.copy().merge(forward)
        assert merged_ab.to_dict() == merged_ba.to_dict()

    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    @given(values=samples, pct=st.floats(min_value=0.0, max_value=100.0))
    def test_cached_rank_view_matches_fresh_sketch(self, values, pct):
        """Interleaved queries and inserts must see invalidated caches:
        a sketch queried mid-stream answers exactly like a fresh sketch
        fed the same prefix."""
        streaming = QuantileSketch()
        for count, value in enumerate(values, start=1):
            streaming.add(value)
            if count % 7 == 0:
                streaming.percentile(50.0)  # populate the cached view
        fresh = QuantileSketch()
        fresh.extend(values)
        assert streaming.percentile(pct) == fresh.percentile(pct)
        assert streaming.mean == fresh.mean

    def test_bulk_rejects_bad_indices_and_counts(self):
        sketch = QuantileSketch()
        with pytest.raises(SketchError, match="count"):
            sketch.add_bucket_counts(0, -1)
        with pytest.raises(SketchError, match="index"):
            sketch.add_bucket_counts(10**9, 3)
        with pytest.raises(SketchError, match="bucketable"):
            sketch.index_of(0.0)
        sketch.add_bucket_counts(sketch.index_of(5.0), 0)
        assert sketch.to_dict() == QuantileSketch().to_dict()
