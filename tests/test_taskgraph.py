"""Tests for the task-graph model (repro.taskgraph.graph)."""

from __future__ import annotations

import pytest

from repro.errors import TaskGraphError
from repro.taskgraph.graph import TaskGraph, TaskSpec


def make_graph() -> TaskGraph:
    """src -> (a, b) -> sink plus an isolated task."""
    tasks = [
        TaskSpec("src", 10.0),
        TaskSpec("a", 20.0),
        TaskSpec("b", 30.0),
        TaskSpec("sink", 5.0),
        TaskSpec("lone", 7.0),
    ]
    edges = [("src", "a"), ("src", "b"), ("a", "sink"), ("b", "sink")]
    return TaskGraph("g", tasks, edges)


class TestTaskSpec:
    def test_rejects_empty_id(self):
        with pytest.raises(TaskGraphError, match="non-empty"):
            TaskSpec("", 1.0)

    def test_rejects_nonpositive_latency(self):
        with pytest.raises(TaskGraphError, match="latency"):
            TaskSpec("t", 0.0)

    def test_stage_defaults_to_zero(self):
        assert TaskSpec("t", 1.0).stage == 0


class TestConstruction:
    def test_counts(self):
        graph = make_graph()
        assert graph.num_tasks == 5
        assert graph.num_edges == 4

    def test_rejects_empty_name(self):
        with pytest.raises(TaskGraphError, match="name"):
            TaskGraph("", [TaskSpec("t", 1.0)], [])

    def test_rejects_no_tasks(self):
        with pytest.raises(TaskGraphError, match="at least one"):
            TaskGraph("g", [], [])

    def test_rejects_duplicate_ids(self):
        with pytest.raises(TaskGraphError, match="duplicate task"):
            TaskGraph("g", [TaskSpec("t", 1.0), TaskSpec("t", 2.0)], [])

    def test_rejects_unknown_edge_endpoint(self):
        with pytest.raises(TaskGraphError, match="unknown task"):
            TaskGraph("g", [TaskSpec("t", 1.0)], [("t", "missing")])

    def test_rejects_self_loop(self):
        with pytest.raises(TaskGraphError, match="self loop"):
            TaskGraph("g", [TaskSpec("t", 1.0)], [("t", "t")])

    def test_rejects_duplicate_edge(self):
        tasks = [TaskSpec("a", 1.0), TaskSpec("b", 1.0)]
        with pytest.raises(TaskGraphError, match="duplicate edge"):
            TaskGraph("g", tasks, [("a", "b"), ("a", "b")])

    def test_rejects_cycle(self):
        tasks = [TaskSpec("a", 1.0), TaskSpec("b", 1.0), TaskSpec("c", 1.0)]
        edges = [("a", "b"), ("b", "c"), ("c", "a")]
        with pytest.raises(TaskGraphError, match="cycle"):
            TaskGraph("g", tasks, edges)


class TestTopology:
    def test_topological_order_respects_edges(self):
        graph = make_graph()
        order = graph.topological_order
        assert order.index("src") < order.index("a") < order.index("sink")
        assert order.index("src") < order.index("b") < order.index("sink")

    def test_topo_index_matches_order(self):
        graph = make_graph()
        for index, task_id in enumerate(graph.topological_order):
            assert graph.topo_index(task_id) == index

    def test_predecessors_and_successors(self):
        graph = make_graph()
        assert set(graph.predecessors("sink")) == {"a", "b"}
        assert set(graph.successors("src")) == {"a", "b"}
        assert graph.predecessors("lone") == ()

    def test_sources_and_sinks(self):
        graph = make_graph()
        assert set(graph.sources()) == {"src", "lone"}
        assert set(graph.sinks()) == {"sink", "lone"}

    def test_unknown_task_raises(self):
        with pytest.raises(TaskGraphError, match="unknown task"):
            make_graph().task("missing")
        with pytest.raises(TaskGraphError, match="unknown task"):
            make_graph().predecessors("missing")
        with pytest.raises(TaskGraphError, match="unknown task"):
            make_graph().successors("missing")

    def test_tasks_view_is_cached_and_read_only(self):
        # ``tasks`` returns one cached read-only view rather than a fresh
        # dict copy per access (the hypervisor reads it in hot paths).
        graph = make_graph()
        view = graph.tasks
        assert view is graph.tasks
        assert set(view) == set(graph.topological_order)
        with pytest.raises(TypeError):
            view["rogue"] = view["src"]  # type: ignore[index]

    def test_adjacency_tuples_are_stable(self):
        # predecessors/successors return prebuilt tuples: identical
        # objects per query, immutable by construction.
        graph = make_graph()
        assert graph.predecessors("sink") is graph.predecessors("sink")
        assert graph.successors("src") is graph.successors("src")
        assert isinstance(graph.predecessors("sink"), tuple)


class TestDerivedMetrics:
    def test_total_latency(self):
        assert make_graph().total_latency_ms() == 72.0

    def test_critical_path(self):
        # src -> b -> sink = 10 + 30 + 5
        assert make_graph().critical_path_ms() == 45.0

    def test_depth(self):
        assert make_graph().depth() == 3

    def test_max_width(self):
        # level 1: src + lone; level 2: a + b -> width 2
        assert make_graph().max_width() == 2

    def test_ancestors(self):
        graph = make_graph()
        assert graph.ancestors("sink") == frozenset({"src", "a", "b"})
        assert graph.ancestors("src") == frozenset()

    def test_single_node_metrics(self):
        graph = TaskGraph("one", [TaskSpec("t", 42.0)], [])
        assert graph.critical_path_ms() == 42.0
        assert graph.depth() == 1
        assert graph.max_width() == 1

    def test_repr_mentions_shape(self):
        assert "tasks=5" in repr(make_graph())
