"""Tests for the platform configuration (repro.config)."""

from __future__ import annotations

import pytest

from repro.config import (
    DEFAULT_NUM_SLOTS,
    DEFAULT_RECONFIG_MS,
    DEFAULT_SCHEDULING_INTERVAL_MS,
    PRIORITY_LEVELS,
    SystemConfig,
    ZCU106_CONFIG,
)


class TestDefaults:
    def test_paper_platform_values(self):
        assert ZCU106_CONFIG.num_slots == 10
        assert ZCU106_CONFIG.reconfig_ms == 80.0
        assert ZCU106_CONFIG.scheduling_interval_ms == 400.0

    def test_priority_levels_are_1_3_9(self):
        assert PRIORITY_LEVELS == (1, 3, 9)
        assert ZCU106_CONFIG.priority_levels == (1, 3, 9)

    def test_module_constants_back_defaults(self):
        config = SystemConfig()
        assert config.num_slots == DEFAULT_NUM_SLOTS
        assert config.reconfig_ms == DEFAULT_RECONFIG_MS
        assert config.scheduling_interval_ms == DEFAULT_SCHEDULING_INTERVAL_MS

    def test_highest_and_lowest_priority(self):
        assert ZCU106_CONFIG.highest_priority == 9
        assert ZCU106_CONFIG.lowest_priority == 1


class TestValidation:
    def test_rejects_zero_slots(self):
        with pytest.raises(ValueError, match="num_slots"):
            SystemConfig(num_slots=0)

    def test_rejects_negative_reconfig(self):
        with pytest.raises(ValueError, match="reconfig_ms"):
            SystemConfig(reconfig_ms=-1.0)

    def test_rejects_zero_interval(self):
        with pytest.raises(ValueError, match="scheduling_interval_ms"):
            SystemConfig(scheduling_interval_ms=0.0)

    def test_rejects_empty_priorities(self):
        with pytest.raises(ValueError, match="priority_levels"):
            SystemConfig(priority_levels=())

    def test_rejects_unsorted_priorities(self):
        with pytest.raises(ValueError, match="increasing"):
            SystemConfig(priority_levels=(9, 3, 1))

    def test_rejects_nonpositive_priorities(self):
        with pytest.raises(ValueError, match="positive"):
            SystemConfig(priority_levels=(0, 3, 9))

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError, match="token_alpha"):
            SystemConfig(token_alpha=0.0)

    def test_rejects_bad_saturation_threshold(self):
        with pytest.raises(ValueError, match="saturation_threshold"):
            SystemConfig(saturation_threshold=1.5)

    def test_validate_priority_accepts_known(self):
        assert ZCU106_CONFIG.validate_priority(3) == 3

    def test_validate_priority_rejects_unknown(self):
        with pytest.raises(ValueError, match="priority 5"):
            ZCU106_CONFIG.validate_priority(5)


class TestFloorPriority:
    @pytest.mark.parametrize(
        "value,expected",
        [(0.5, 0.0), (1.0, 1.0), (2.9, 1.0), (3.0, 3.0), (8.99, 3.0),
         (9.0, 9.0), (100.0, 9.0)],
    )
    def test_floor_to_nearest_level(self, value, expected):
        assert ZCU106_CONFIG.floor_priority(value) == expected

    def test_floor_with_custom_levels(self):
        config = SystemConfig(priority_levels=(2, 5))
        assert config.floor_priority(4.9) == 2.0
        assert config.floor_priority(5.0) == 5.0
        assert config.floor_priority(1.0) == 0.0


class TestWithSlots:
    def test_with_slots_changes_only_slots(self):
        derived = ZCU106_CONFIG.with_slots(4)
        assert derived.num_slots == 4
        assert derived.reconfig_ms == ZCU106_CONFIG.reconfig_ms
        assert derived.priority_levels == ZCU106_CONFIG.priority_levels

    def test_config_is_hashable_and_frozen(self):
        config = SystemConfig()
        with pytest.raises(AttributeError):
            config.num_slots = 5  # type: ignore[misc]
        assert hash(config) == hash(SystemConfig())
