"""Hand-computed timing tests for the hypervisor execution model.

These pin down the simulation semantics every experiment relies on:
bulk vs pipelined batch flow, reconfiguration masking via prefetch, CAP
serialization and the response/wait/execution accounting.
"""

from __future__ import annotations

from repro.schedulers.no_sharing import NoSharingScheduler
from repro.sim.trace import TraceKind
from repro.taskgraph.builders import chain_graph
from tests.conftest import request, run_named, run_workload, small_config


class GreedyPipeline(NoSharingScheduler):
    """Oldest app, pipelined items, prefetch configuration (test helper)."""

    name = "greedy_pipeline_test"
    pipelined = True


class TestBulkChainTiming:
    def test_chain2_batch2_two_slots_baseline(self, chain2):
        hv, results = run_named("baseline", [request(chain2, batch_size=2)])
        result = results[0]
        # config t0 0-80; t0 items 80-180-280 (bulk); t1 prefetch-configured
        # 80-160; t1 waits for the full t0 batch, runs 280-380-480.
        assert result.first_start_ms == 80.0
        assert result.retire_ms == 480.0
        assert result.response_ms == 480.0
        assert result.wait_ms == 80.0
        assert result.run_busy_ms == 400.0
        assert result.reconfig_busy_ms == 160.0
        assert result.reconfig_count == 2

    def test_reconfiguration_is_masked_by_prefetch(self, chain2):
        hv, _ = run_named("baseline", [request(chain2, batch_size=2)])
        config_dones = hv.trace.of_kind(TraceKind.TASK_CONFIG_DONE)
        assert [e.time for e in config_dones] == [80.0, 160.0]

    def test_single_task_app(self):
        graph = chain_graph("one", [100.0])
        _, results = run_named("baseline", [request(graph, batch_size=3)])
        assert results[0].response_ms == 80.0 + 300.0


class TestPipelinedChainTiming:
    def test_chain2_batch2_two_slots_pipelined(self, chain2):
        _, results = run_workload(
            GreedyPipeline(), [request(chain2, batch_size=2)]
        )
        # t1 item b starts as soon as t0 finished item b: retire at 380.
        assert results[0].retire_ms == 380.0

    def test_pipelining_beats_bulk_for_long_batches(self, chain2):
        batch = 10
        _, bulk = run_named("baseline", [request(chain2, batch_size=batch)])
        _, piped = run_workload(
            GreedyPipeline(), [request(chain2, batch_size=batch)]
        )
        # bulk: 80 + 2 x 100 x batch; pipelined: ~100 x (batch + 1) + 80.
        assert bulk[0].response_ms == 80.0 + 2 * 100.0 * batch
        assert piped[0].response_ms == 80.0 + 100.0 * (batch + 1)

    def test_pipeline_item_dependencies_in_trace(self, chain2):
        hv, _ = run_workload(GreedyPipeline(), [request(chain2, batch_size=3)])
        starts = {}
        dones = {}
        for event in hv.trace:
            if event.kind == TraceKind.ITEM_START:
                starts[(event.task_id, event.detail)] = event.time
            elif event.kind == TraceKind.ITEM_DONE:
                dones[(event.task_id, event.detail)] = event.time
        for item in range(3):
            assert starts[("chain2_t1", float(item))] >= dones[
                ("chain2_t0", float(item))
            ]


class TestParallelBranches:
    def test_diamond_branches_run_concurrently(self, diamond):
        config = small_config(num_slots=4)
        _, results = run_named(
            "baseline", [request(diamond, batch_size=1)], config
        )
        # src cfg 0-80, runs 80-180; left cfg 80-160, right cfg 160-240;
        # both branches run 180-280 and 240-340; sink waits for both,
        # runs 340-440 (its config 240-320 is hidden).
        assert results[0].response_ms == 440.0

    def test_diamond_single_slot_serializes(self, diamond):
        config = small_config(num_slots=1)
        _, results = run_named(
            "baseline", [request(diamond, batch_size=1)], config
        )
        # 4 x (80 reconfig + 100 run), strictly serial.
        assert results[0].response_ms == 720.0


class TestCapSerialization:
    def test_one_reconfig_at_a_time(self, diamond):
        config = small_config(num_slots=4)
        hv, _ = run_named("baseline", [request(diamond, batch_size=1)], config)
        intervals = []
        pending = {}
        for event in hv.trace:
            if event.kind == TraceKind.TASK_CONFIG_START:
                pending[event.task_id] = event.time
            elif event.kind == TraceKind.TASK_CONFIG_DONE:
                intervals.append((pending.pop(event.task_id), event.time))
        intervals.sort()
        for (_, end), (start, _) in zip(intervals, intervals[1:]):
            assert start >= end


class TestMultiApplication:
    def test_baseline_serializes_apps(self):
        g1 = chain_graph("g1", [100.0])
        g2 = chain_graph("g2", [100.0])
        _, results = run_named(
            "baseline",
            [request(g1, batch_size=1), request(g2, batch_size=1,
                                                 arrival_ms=10.0)],
        )
        # app0: cfg 0-80, run 80-180; app1 starts only after app0 retires.
        assert results[0].response_ms == 180.0
        assert results[1].retire_ms == 180.0 + 80.0 + 100.0
        assert results[1].response_ms == 360.0 - 10.0

    def test_fcfs_orders_by_arrival(self):
        g1 = chain_graph("g1", [100.0])
        g2 = chain_graph("g2", [50.0])
        config = small_config(num_slots=1)
        _, results = run_named(
            "fcfs",
            [request(g1), request(g2, arrival_ms=10.0)],
            config,
        )
        assert results[0].retire_ms == 180.0
        assert results[1].retire_ms == 180.0 + 80.0 + 50.0

    def test_fcfs_shares_free_slots(self):
        g1 = chain_graph("g1", [100.0])
        g2 = chain_graph("g2", [100.0])
        _, results = run_named(
            "fcfs", [request(g1), request(g2)], small_config(num_slots=2)
        )
        # app0 cfg 0-80 runs 80-180; app1 cfg 80-160 runs 160-260.
        assert results[0].retire_ms == 180.0
        assert results[1].retire_ms == 260.0


class TestHypervisorBookkeeping:
    def test_buffers_released_after_retire(self, chain2):
        hv, _ = run_named("baseline", [request(chain2, batch_size=2)])
        assert hv.buffers.live_buffers == 0
        assert hv.buffers.used_bytes == 0
        assert hv.buffers.peak_bytes > 0

    def test_trace_records_lifecycle(self, chain2):
        hv, _ = run_named("baseline", [request(chain2, batch_size=1)])
        kinds = [e.kind for e in hv.trace]
        assert TraceKind.APP_ARRIVED in kinds
        assert TraceKind.APP_STARTED in kinds
        assert TraceKind.APP_RETIRED in kinds
        assert kinds.count(TraceKind.TASK_DONE) == 2

    def test_results_ordered_by_app_id(self):
        g = chain_graph("g", [10.0])
        reqs = [request(g, arrival_ms=float(i)) for i in range(3)]
        _, results = run_named("fcfs", reqs)
        assert [r.app_id for r in results] == [0, 1, 2]

    def test_determinism(self, chain3):
        reqs = [
            request(chain3, batch_size=3),
            request(chain3, batch_size=2, arrival_ms=50.0),
        ]
        _, first = run_named("nimblock", reqs)
        _, second = run_named("nimblock", reqs)
        assert [(r.retire_ms, r.response_ms) for r in first] == [
            (r.retire_ms, r.response_ms) for r in second
        ]
