"""Tests for the extension experiments (mixes, estimates, interconnect,
scale-out, extended schedulers) at small scale."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.experiments import (
    ext_estimates,
    ext_interconnect,
    ext_mixes,
    ext_scaleout,
    ext_schedulers,
)
from repro.experiments.runner import ExperimentSettings, RunCache
from repro.workload.mixes import MIXES, mix_sequence

TINY = ExperimentSettings(num_sequences=1, num_events=6)


class TestMixes:
    def test_all_mixes_draw_only_their_pool(self):
        for name, pool in MIXES.items():
            sequence = mix_sequence(name, seed=3, num_events=30)
            assert set(sequence.benchmarks_used()) <= set(pool)

    def test_unknown_mix_rejected(self):
        with pytest.raises(WorkloadError, match="unknown mix"):
            mix_sequence("spiky", seed=1, num_events=5)

    def test_experiment_produces_all_cells(self):
        result = ext_mixes.run(
            cache=RunCache(), settings=TINY,
            mixes=("balanced", "no_outlier"),
        )
        assert set(result.mixes) == {"balanced", "no_outlier"}
        for mix in result.mixes:
            for scheduler in result.schedulers:
                assert result.reduction(mix, scheduler) > 0
        assert "mix" in ext_mixes.format_result(result)


class TestEstimates:
    def test_sweep_produces_all_cells(self):
        result = ext_estimates.run(
            settings=TINY, error_levels=(0.0, 0.3)
        )
        for error in (0.0, 0.3):
            for scheduler in result.schedulers:
                assert result.reduction(error, scheduler) > 0
        assert result.degradation("nimblock") > 0.5
        assert "estimate error" in ext_estimates.format_result(result)


class TestInterconnectStudy:
    def test_ps_routed_never_cheaper_than_free(self):
        result = ext_interconnect.run(settings=TINY)
        assert result.overhead_vs_free("zero_cost") == 1.0
        assert result.overhead_vs_free("ps_routed") >= 1.0
        assert result.overhead_vs_free("noc") <= result.overhead_vs_free(
            "ps_routed"
        ) + 1e-9
        assert "interconnect" in ext_interconnect.format_result(result)


class TestScaleOut:
    def test_fleet_speedup_positive(self):
        result = ext_scaleout.run(settings=TINY, fleet_sizes=(1, 2))
        for dispatch in ("round_robin", "least_loaded"):
            assert result.speedup(2, dispatch) >= 1.0
        assert "scale-out" in ext_scaleout.format_result(result)


class TestSeedSensitivity:
    def test_statistics_and_stability(self):
        from repro.experiments import ext_seeds

        result = ext_seeds.run(
            cache=RunCache(), settings=TINY, blocks=3
        )
        assert result.blocks == 3
        for scheduler in result.schedulers:
            assert len(result.block_values(scheduler)) == 3
            assert result.mean(scheduler) > 0
            assert result.stdev(scheduler) >= 0
        text = ext_seeds.format_result(result)
        assert "seed sensitivity" in text
        assert "cv" in text


class TestHeteroFleets:
    def test_fleets_complete_and_report(self):
        from repro.experiments import ext_hetero

        result = ext_hetero.run(settings=TINY)
        # Ordering claims need statistical scale (the bench asserts them
        # at 3x20); here we check completeness and accounting only.
        assert result.response("2x big") <= result.response("1x big")
        big, edge = result.placements["big + edge"]
        assert big + edge == TINY.num_sequences * TINY.num_events
        assert "heterogeneous" in ext_hetero.format_result(result).lower()


class TestExtendedSchedulers:
    def test_tables_complete(self):
        result = ext_schedulers.run(cache=RunCache(), settings=TINY)
        for scenario in result.scenarios:
            for scheduler in result.schedulers:
                assert result.reduction(scenario, scheduler) > 0
        text = ext_schedulers.format_result(result)
        assert "dml_static" in text
        assert "priority class" in text
