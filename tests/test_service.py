"""Tests for the online service tier (repro.service + repro.workload.arrivals).

Pins the subsystem's four load-bearing guarantees:

* **determinism** — same seed, same knobs give byte-identical report
  payloads, serially and across ``--jobs N`` worker fan-out;
* **O(1) memory** — after a run the hypervisor's books are empty, the
  trace is a bounded ring, and only windowed aggregates remain;
* **accuracy** — the streaming sketch p99 tracks the exact percentile of
  the same responses within the documented relative error;
* **checkpoint/resume** — a snapshot-plus-resume run reproduces an
  uninterrupted run's windows and lifetime counters exactly.
"""

from __future__ import annotations

import itertools
import json
import math

import pytest

from repro.errors import ServiceError, WorkloadError
from repro.metrics.response import percentile
from repro.metrics.slo import DEFAULT_SERVICE_SLO, SloTarget
from repro.service.loop import ServiceLoop, format_report
from repro.service.snapshot import (
    SNAPSHOT_FORMAT,
    load_snapshot,
    save_snapshot,
    validate_snapshot,
)
from repro.service.windows import DEFAULT_WINDOW_MS, WindowedMetrics
from repro.sim.trace import BoundedTrace, Trace, TraceKind
from repro.workload.arrivals import (
    ARRIVAL_KINDS,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    make_arrivals,
    service_rate_process,
)


def payload(report) -> str:
    """The canonical byte-identity form of a report."""
    return json.dumps(report.to_dict(), sort_keys=True)


class TestArrivalProcesses:
    def test_events_replays_identically(self):
        process = PoissonArrivals(seed=7, rate_per_s=3.0)
        first = list(itertools.islice(process.events(), 50))
        second = list(itertools.islice(process.events(), 50))
        assert first == second

    def test_skip_matches_uninterrupted_tail(self):
        process = MMPPArrivals(seed=5, calm_rate_per_s=1.0,
                               burst_rate_per_s=8.0)
        full = list(itertools.islice(process.events(), 40))
        tail = list(itertools.islice(process.events(skip=25), 15))
        assert tail == full[25:]

    @pytest.mark.parametrize("kind,knobs", [
        ("poisson", {"rate_per_s": 2.0}),
        ("mmpp", {"calm_rate_per_s": 1.0, "burst_rate_per_s": 6.0}),
        ("diurnal", {"trough_rate_per_s": 0.5, "peak_rate_per_s": 4.0,
                     "period_s": 120.0}),
    ])
    def test_arrivals_are_nondecreasing_and_well_formed(self, kind, knobs):
        process = make_arrivals(kind, seed=3, **knobs)
        events = list(itertools.islice(process.events(), 200))
        times = [e.arrival_ms for e in events]
        assert times == sorted(times)
        assert all(e.arrival_ms > 0 for e in events)
        assert all(e.batch_size >= 1 for e in events)

    def test_mean_rate_roughly_holds(self):
        process = PoissonArrivals(seed=11, rate_per_s=5.0)
        events = list(itertools.islice(process.events(), 2000))
        span_s = events[-1].arrival_ms / 1000.0
        rate = len(events) / span_s
        assert 4.0 < rate < 6.0

    def test_mmpp_long_run_mean_matches_formula(self):
        process = MMPPArrivals(seed=2, calm_rate_per_s=1.0,
                               burst_rate_per_s=10.0)
        events = list(itertools.islice(process.events(), 6000))
        span_s = events[-1].arrival_ms / 1000.0
        empirical = len(events) / span_s
        expected = process.mean_rate_per_s()
        assert abs(empirical - expected) / expected < 0.25

    def test_diurnal_rate_curve_bounds(self):
        process = DiurnalArrivals(seed=1, trough_rate_per_s=0.5,
                                  peak_rate_per_s=4.0, period_s=100.0)
        assert process.rate_at(0.0) == pytest.approx(0.5)
        assert process.rate_at(50_000.0) == pytest.approx(4.0)
        for t_ms in (10_000.0, 33_000.0, 80_000.0):
            assert 0.5 <= process.rate_at(t_ms) <= 4.0

    def test_registry_rejects_unknown_kind_and_bad_knobs(self):
        with pytest.raises(WorkloadError, match="poisson"):
            make_arrivals("nope", rate_per_s=1.0)
        with pytest.raises(WorkloadError, match="knobs"):
            make_arrivals("poisson", seed=1, not_a_knob=2.0)
        assert set(ARRIVAL_KINDS) == {
            "poisson", "mmpp", "diurnal", "replay", "episode",
        }

    def test_service_rate_process_burstiness(self):
        plain = service_rate_process(2.0, seed=1)
        assert isinstance(plain, PoissonArrivals)
        bursty = service_rate_process(2.0, seed=1, burstiness=0.5)
        assert isinstance(bursty, MMPPArrivals)
        assert bursty.mean_rate_per_s() == pytest.approx(2.0)
        with pytest.raises(WorkloadError, match="burstiness"):
            service_rate_process(2.0, burstiness=-1.0)

    def test_replay_loops_with_open_loop_offsets(self, tmp_path):
        from repro.workload.scenarios import STRESS, scenario_sequence
        from repro.workload.trace_io import save_sequence

        path = tmp_path / "recorded.json"
        save_sequence(scenario_sequence(STRESS, seed=4, num_events=6), path)
        process = make_arrivals("replay", path=path, loop=True)
        events = list(itertools.islice(process.events(), 15))
        times = [e.arrival_ms for e in events]
        assert times == sorted(times)
        # The second cycle replays the same apps, shifted forward.
        assert events[6].benchmark == events[0].benchmark
        assert events[6].arrival_ms > events[5].arrival_ms


class TestBoundedTrace:
    def _fill(self, trace, n):
        for i in range(n):
            kind = TraceKind.ITEM_DONE if i % 3 else TraceKind.APP_ARRIVED
            trace.record(float(i), kind, app_id=i)

    def test_lifetime_aggregates_survive_trimming(self):
        bounded, exact = BoundedTrace(capacity=16), Trace()
        self._fill(bounded, 500)
        self._fill(exact, 500)
        assert bounded.total_recorded == len(exact) == 500
        assert bounded.dropped == 500 - len(bounded)
        assert len(bounded) < 2 * 16
        for kind in (TraceKind.APP_ARRIVED, TraceKind.ITEM_DONE):
            assert bounded.count(kind) == exact.count(kind)
        assert bounded.start_ms == exact.start_ms == 0.0
        assert bounded.end_ms == exact.end_ms == 499.0

    def test_retained_tail_is_the_most_recent_rows(self):
        trace = BoundedTrace(capacity=8)
        self._fill(trace, 100)
        times = [event.time for event in trace]
        assert times == sorted(times)
        assert times[-1] == 99.0
        assert min(times) >= 100 - 2 * 8

    def test_rejects_silly_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            BoundedTrace(capacity=0)


class TestSloTarget:
    def test_both_dimensions_must_hold(self):
        target = SloTarget(p99_ms=1000.0, max_loss_frac=0.1)
        assert target.met(900.0, 0.05)
        assert not target.met(1100.0, 0.0)
        assert not target.met(500.0, 0.2)
        assert not target.met(float("nan"), 0.0)

    def test_validation(self):
        from repro.errors import AdmissionError

        with pytest.raises(AdmissionError, match="p99_ms"):
            SloTarget(p99_ms=0.0)
        with pytest.raises(AdmissionError, match="max_loss_frac"):
            SloTarget(max_loss_frac=1.5)

    def test_default_target_describes_itself(self):
        assert "p99" in DEFAULT_SERVICE_SLO.describe()


def run_loop(**overrides):
    knobs = dict(
        scheduler="nimblock",
        admission="shed",
        seed=3,
        max_submissions=60,
        window_ms=15_000.0,
    )
    knobs.update(overrides)
    arrivals = service_rate_process(2.0, seed=knobs.pop("seed"))
    return ServiceLoop(arrivals, knobs.pop("scheduler"), **knobs)


class TestServiceLoop:
    def test_conservation_and_report_shape(self):
        report = run_loop().run()
        assert report.submitted == 60
        assert report.arrived == 60
        assert report.completed + report.shed + report.dropped \
            == report.arrived
        assert report.windows_closed >= 1
        total = report.totals()
        assert total.completed == report.completed
        assert total.arrived == report.arrived
        assert 0.0 <= report.loss_frac <= 1.0
        assert report.span_ms > 0
        assert 0.0 <= report.slo_attainment(DEFAULT_SERVICE_SLO) <= 1.0
        text = report.format()
        assert "service run:" in text
        assert format_report(report.to_dict()) == text

    def test_same_seed_reports_are_byte_identical(self):
        assert payload(run_loop().run()) == payload(run_loop().run())

    def test_stateful_scheduler_survives_shedding(self):
        # Regression: rr keeps per-slot task queues across passes; a shed
        # pending app used to leave stale entries behind, and the next
        # free slot raised "configure for unknown/retired app". The exact
        # ext-service cell that first exposed it:
        arrivals = service_rate_process(2.0, seed=20230620)
        report = ServiceLoop(
            arrivals, "rr", admission="shed", max_submissions=100,
            window_ms=20_000.0,
        ).run()
        assert report.shed > 0
        assert report.completed + report.shed + report.dropped \
            == report.arrived

    def test_different_seeds_differ(self):
        assert payload(run_loop(seed=3).run()) \
            != payload(run_loop(seed=4).run())

    def test_o1_state_after_run(self):
        loop = run_loop(max_submissions=120, trace_capacity=64)
        report = loop.run()
        assert report.completed > 0
        # Every per-app book is empty: state was discarded as it retired.
        assert loop.hv.apps == {}
        assert loop.hv.retired == []
        assert loop.hv.shed == []
        assert len(loop.hv.pending) == 0
        # The trace ring stayed bounded while lifetime counters kept up.
        trace = loop.hv.trace
        assert isinstance(trace, BoundedTrace)
        assert len(trace) < 2 * 64
        assert trace.count(TraceKind.APP_RETIRED) == report.completed
        assert trace.total_recorded > len(trace)

    def test_streaming_p99_tracks_exact_percentile(self):
        loop = run_loop(max_submissions=150)
        exact = []
        loop.hv.add_retire_listener(
            lambda app, now: exact.append(now - app.arrival_ms)
        )
        report = loop.run()
        assert len(exact) == report.completed > 0
        for pct in (50.0, 95.0, 99.0):
            reference = percentile(exact, pct)
            assert abs(report.p(pct) - reference) \
                <= report.alpha * reference + 1e-9

    def test_windows_partition_the_lifetime_counters(self):
        report = run_loop(max_submissions=80).run()
        windows = report.windows.windows
        assert sum(w.arrived for w in windows) == report.arrived
        assert sum(w.completed for w in windows) == report.completed
        assert sum(w.shed for w in windows) == report.shed
        indexes = [w.index for w in windows]
        assert indexes == sorted(indexes)
        # Half-open windows: every response lands in its completion window.
        for window in windows:
            assert window.sketch.count == window.completed

    def test_horizon_bounds_the_stream(self):
        report = run_loop(max_submissions=10_000,
                          horizon_ms=30_000.0).run()
        assert report.submitted < 10_000
        assert report.arrived == report.submitted

    def test_loop_runs_once(self):
        loop = run_loop(max_submissions=5)
        loop.run()
        with pytest.raises(ServiceError, match="once"):
            loop.run()

    def test_constructor_validation(self):
        arrivals = service_rate_process(1.0, seed=1)
        with pytest.raises(ServiceError, match="max_submissions"):
            ServiceLoop(arrivals, max_submissions=-1)
        with pytest.raises(ServiceError, match="snapshot_every_windows"):
            ServiceLoop(arrivals, snapshot_every_windows=0)

    def test_unbounded_policy_completes_everything(self):
        report = run_loop(admission="unbounded", max_submissions=40).run()
        assert report.completed == report.arrived == 40
        assert report.shed == report.dropped == 0


def slow_loop(**overrides):
    """A lightly loaded loop: quiescent boundaries, hence snapshots."""
    knobs = dict(
        scheduler="nimblock",
        admission="unbounded",
        max_submissions=24,
        window_ms=20_000.0,
        snapshot_every_windows=2,
    )
    knobs.update(overrides)
    arrivals = service_rate_process(0.12, seed=9)
    return ServiceLoop(arrivals, knobs.pop("scheduler"), **knobs)


def resume_comparable(report) -> dict:
    """The payload minus the fields that legitimately differ on resume."""
    data = report.to_dict()
    data.pop("snapshot_count")
    data.pop("resumed_from_ms")
    return data


class TestSnapshotResume:
    def test_quiescent_boundaries_produce_snapshots(self):
        report = slow_loop().run()
        assert report.snapshots
        for snapshot in report.snapshots:
            validate_snapshot(snapshot)
            assert snapshot["format"] == SNAPSHOT_FORMAT
            assert snapshot["cursor"] <= report.arrived

    def test_resumed_run_matches_uninterrupted_run(self):
        straight = slow_loop().run()
        assert len(straight.snapshots) >= 2
        # Resume from a mid-run checkpoint and from the earliest one.
        for snapshot in (straight.snapshots[0],
                         straight.snapshots[len(straight.snapshots) // 2]):
            resumed = ServiceLoop.resume(
                snapshot, service_rate_process(0.12, seed=9)
            ).run()
            assert resumed.resumed_from_ms == snapshot["clock_ms"]
            assert resume_comparable(resumed) == resume_comparable(straight)

    def test_snapshot_round_trips_through_json(self, tmp_path):
        straight = slow_loop().run()
        path = tmp_path / "service.snapshot.json"
        save_snapshot(straight.snapshots[0], path)
        loaded = load_snapshot(path)
        assert loaded == straight.snapshots[0]
        resumed = ServiceLoop.resume(
            loaded, service_rate_process(0.12, seed=9)
        ).run()
        assert resume_comparable(resumed) == resume_comparable(straight)

    def test_resume_rejects_mismatched_stream(self):
        straight = slow_loop().run()
        with pytest.raises(ServiceError, match="different arrival"):
            ServiceLoop.resume(
                straight.snapshots[0], service_rate_process(0.5, seed=9)
            )

    def test_validate_rejects_malformed_payloads(self):
        with pytest.raises(ServiceError, match="dict"):
            validate_snapshot([1, 2])
        with pytest.raises(ServiceError, match="format"):
            validate_snapshot({"format": 99})
        with pytest.raises(ServiceError, match="missing"):
            validate_snapshot({"format": SNAPSHOT_FORMAT})

    def test_load_rejects_non_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("not json {", encoding="utf-8")
        with pytest.raises(ServiceError, match="JSON"):
            load_snapshot(path)


class TestParallelAndFacade:
    def test_service_cells_jobs_equivalence(self):
        from repro.experiments.parallel import service_cells

        tasks = [
            ("nimblock", "shed", 2.0, 0.0, 1, 40, 15_000.0, "full"),
            ("prema", "unbounded", 2.0, 0.0, 1, 40, 15_000.0, "metrics"),
        ]
        serial = service_cells(tasks, jobs=1)
        fanned = service_cells(tasks, jobs=2)
        assert json.dumps(serial, sort_keys=True) \
            == json.dumps(fanned, sort_keys=True)

    def test_serve_facade_round_trip(self):
        import repro

        report = repro.serve("nimblock", rate=2.0, submissions=30,
                             window_ms=15_000.0)
        assert report.completed + report.shed + report.dropped \
            == report.arrived == 30
        assert isinstance(report.windows, WindowedMetrics)

    def test_top_level_exports(self):
        import repro

        assert repro.ServiceLoop is ServiceLoop
        assert callable(repro.serve)
        assert repro.SloTarget is SloTarget
        assert repro.WindowedMetrics is WindowedMetrics

    def test_cli_serve_smoke(self, capsys):
        from repro.cli import main

        code = main([
            "serve", "--rate", "2", "--submissions", "30",
            "--window-s", "15", "--schedulers", "nimblock",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "service run: scheduler=nimblock" in out


class TestExtServiceExperiment:
    def test_tiny_capacity_sweep_shape(self):
        from repro.experiments import ext_service
        from repro.experiments.runner import ExperimentSettings

        result = ext_service.run(
            ExperimentSettings(num_sequences=1, num_events=4),
            schedulers=("fcfs", "nimblock"),
            policies=("unbounded",),
            rates=(0.5, 2.0),
            submissions=8,
            jobs=1,
        )
        assert set(result["capacity"]) == {"fcfs", "nimblock"}
        for scheduler in ("fcfs", "nimblock"):
            assert result["capacity"][scheduler]["unbounded"] \
                in (0.0, 0.5, 2.0)
            for rate in ("0.5", "2"):
                cell = result["cells"][f"{scheduler}|unbounded|{rate}"]
                assert cell["arrived"] == 8
                assert isinstance(cell["ok"], bool)
        text = ext_service.format_result(result)
        assert "Service capacity" in text
        assert "nimblock" in text

    def test_rates_must_be_ascending(self):
        from repro.errors import ExperimentError
        from repro.experiments import ext_service

        with pytest.raises(ExperimentError, match="ascending"):
            ext_service.run(rates=(2.0, 1.0))

    def test_registry_runs_the_experiment(self):
        from repro.experiments.registry import run_experiment
        from repro.experiments.runner import ExperimentSettings

        result = run_experiment(
            "ext-service",
            ExperimentSettings(num_sequences=1, num_events=4),
        )
        assert "capacity" in result.value
        assert result.text


class TestWindowedMetricsUnit:
    def test_default_window_and_totals(self):
        metrics = WindowedMetrics()
        assert metrics.window_ms == DEFAULT_WINDOW_MS
        metrics.observe_arrival(1_000.0)
        metrics.observe_arrival(11_000.0)
        metrics.observe_completion(11_500.0, 450.0)
        total = metrics.total()
        assert total.arrived == 2
        assert total.completed == 1
        assert total.sketch.count == 1

    def test_serialization_round_trip(self):
        metrics = WindowedMetrics(window_ms=5_000.0)
        for t_ms in (100.0, 4_900.0, 5_100.0, 12_000.0):
            metrics.observe_arrival(t_ms)
            metrics.observe_completion(t_ms + 50.0, 50.0)
        clone = WindowedMetrics.from_dict(metrics.to_dict())
        assert clone.to_dict() == metrics.to_dict()
        assert len(clone) == len(metrics)

    def test_format_table_elides_long_runs(self):
        metrics = WindowedMetrics(window_ms=1_000.0)
        for index in range(40):
            metrics.observe_arrival(index * 1_000.0 + 10.0)
        table = metrics.format_table(limit=6)
        assert "elided" in table
        assert len(table.splitlines()) < 40

    def test_empty_total_is_nan_percentile(self):
        assert math.isnan(WindowedMetrics().total().p(99.0))
