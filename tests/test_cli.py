"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_accepts_every_experiment(self):
        parser = build_parser()
        for name in ("table1", "table2", "table3", "fig5", "fig6", "fig7",
                     "fig8", "fig9", "fig10", "fig11", "overhead", "all"):
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_scale_flags(self):
        args = build_parser().parse_args(["fig5", "--sequences", "2",
                                          "--events", "6"])
        assert args.sequences == 2
        assert args.events == 6


class TestMain:
    def test_table2_prints_and_exits_zero(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "all match paper: True" in out

    def test_table1_prints(self, capsys):
        assert main(["table1"]) == 0
        assert "Static" in capsys.readouterr().out

    def test_fig5_small_run(self, capsys):
        assert main(["fig5", "--sequences", "1", "--events", "5"]) == 0
        out = capsys.readouterr().out
        assert "nimblock" in out
        assert "stress" in out

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "table2"],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0
        assert "Table 2" in proc.stdout
