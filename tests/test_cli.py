"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_accepts_every_experiment(self):
        parser = build_parser()
        for name in ("table1", "table2", "table3", "fig5", "fig6", "fig7",
                     "fig8", "fig9", "fig10", "fig11", "overhead", "all"):
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_scale_flags(self):
        args = build_parser().parse_args(["fig5", "--sequences", "2",
                                          "--events", "6"])
        assert args.sequences == 2
        assert args.events == 6


class TestMain:
    def test_table2_prints_and_exits_zero(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "all match paper: True" in out

    def test_table1_prints(self, capsys):
        assert main(["table1"]) == 0
        assert "Static" in capsys.readouterr().out

    def test_fig5_small_run(self, capsys):
        assert main(["fig5", "--sequences", "1", "--events", "5"]) == 0
        out = capsys.readouterr().out
        assert "nimblock" in out
        assert "stress" in out

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "table2"],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0
        assert "Table 2" in proc.stdout


class TestVersionAndExitCodes:
    def test_version_flag_prints_and_exits_zero(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exit_info:
            main(["--version"])
        assert exit_info.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_usage_error_exits_two(self):
        with pytest.raises(SystemExit) as exit_info:
            main(["fig99"])
        assert exit_info.value.code == 2

    def test_experiment_error_exits_one(self, capsys):
        # A negative fault rate is rejected inside the experiment layer.
        assert main(["chaos", "--fault-rate", "-1", "--events", "4"]) == 1
        assert "chaos:" in capsys.readouterr().err


class TestObserveActions:
    def test_trace_chrome_is_valid_trace_event_json(self, capsys):
        import json

        assert main(["trace", "--sequences", "1", "--events", "5"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert isinstance(payload["traceEvents"], list)
        span_events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(span_events) == payload["otherData"]["spans"] > 0

    def test_trace_jsonl_to_file(self, tmp_path, capsys):
        import json

        output = tmp_path / "trace.jsonl"
        assert main(["trace", "--format", "jsonl", "--events", "4",
                     "--output", str(output)]) == 0
        lines = output.read_text().strip().splitlines()
        assert lines
        for line in lines[:5]:
            assert "kind" in json.loads(line)

    def test_stats_emits_prometheus_text(self, capsys):
        assert main(["stats", "--sequences", "1", "--events", "4"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE nimblock_apps_retired_total counter" in out
        assert "nimblock_scheduler_passes_total" in out

    def test_stats_identical_across_jobs(self, capsys):
        args = ["stats", "--sequences", "2", "--events", "4"]
        assert main(args + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--jobs", "2"]) == 0
        fanned = capsys.readouterr().out
        assert serial == fanned

    def test_trace_with_faults_counts_match(self, capsys):
        import json

        assert main(["trace", "--events", "6", "--fault-rate", "0.05",
                     "--seed", "1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        fault_spans = [e for e in payload["traceEvents"]
                       if e["ph"] == "X" and e.get("cat") == "fault"]
        assert fault_spans
