"""Tests for the data-buffer manager (repro.overlay.memory)."""

from __future__ import annotations

import pytest

from repro.errors import BufferError_
from repro.overlay.memory import BufferManager


class TestPublishConsume:
    def test_publish_tracks_usage(self):
        manager = BufferManager(capacity_bytes=1000)
        manager.publish_output(1, "t0", 0, 100, consumers=1)
        assert manager.used_bytes == 100
        assert manager.live_buffers == 1
        assert manager.app_bytes(1) == 100

    def test_consume_releases_at_zero_refs(self):
        manager = BufferManager(capacity_bytes=1000)
        manager.publish_output(1, "t0", 0, 100, consumers=2)
        manager.consume(1, "t0", 0)
        assert manager.live_buffers == 1
        manager.consume(1, "t0", 0)
        assert manager.live_buffers == 0
        assert manager.used_bytes == 0

    def test_sink_output_pinned_until_release(self):
        manager = BufferManager(capacity_bytes=1000)
        manager.publish_output(1, "sink", 0, 100, consumers=0)
        assert manager.live_buffers == 1
        freed = manager.release_app(1)
        assert freed == 100
        assert manager.live_buffers == 0

    def test_duplicate_publish_rejected(self):
        manager = BufferManager(capacity_bytes=1000)
        manager.publish_output(1, "t0", 0, 100, consumers=1)
        with pytest.raises(BufferError_, match="already published"):
            manager.publish_output(1, "t0", 0, 100, consumers=1)

    def test_consume_unknown_rejected(self):
        with pytest.raises(BufferError_, match="no buffer"):
            BufferManager(1000).consume(1, "t0", 0)

    def test_zero_size_rejected(self):
        with pytest.raises(BufferError_, match="size"):
            BufferManager(1000).publish_output(1, "t0", 0, 0, consumers=1)


class TestCapacity:
    def test_out_of_memory_rejected(self):
        manager = BufferManager(capacity_bytes=150)
        manager.publish_output(1, "t0", 0, 100, consumers=1)
        with pytest.raises(BufferError_, match="out of buffer memory"):
            manager.publish_output(1, "t0", 1, 100, consumers=1)

    def test_peak_tracks_high_water_mark(self):
        manager = BufferManager(capacity_bytes=1000)
        manager.publish_output(1, "t0", 0, 300, consumers=1)
        manager.consume(1, "t0", 0)
        manager.publish_output(1, "t0", 1, 100, consumers=1)
        assert manager.peak_bytes == 300
        assert manager.used_bytes == 100

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(BufferError_, match="capacity"):
            BufferManager(0)


class TestReleaseApp:
    def test_release_only_targets_one_app(self):
        manager = BufferManager(capacity_bytes=1000)
        manager.publish_output(1, "t0", 0, 100, consumers=0)
        manager.publish_output(2, "t0", 0, 200, consumers=0)
        manager.release_app(1)
        assert manager.app_bytes(1) == 0
        assert manager.app_bytes(2) == 200

    def test_release_unknown_app_is_noop(self):
        manager = BufferManager(capacity_bytes=1000)
        assert manager.release_app(99) == 0
