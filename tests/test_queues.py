"""Tests for the pending queue (repro.hypervisor.queues)."""

from __future__ import annotations

import pytest

from repro.errors import SchedulerError
from repro.hypervisor.queues import PendingQueue
from tests.test_application_state import make_app


class TestMembership:
    def test_add_and_contains(self):
        queue = PendingQueue()
        app = make_app(app_id=1)
        queue.add(app)
        assert 1 in queue
        assert queue.get(1) is app
        assert len(queue) == 1

    def test_duplicate_add_rejected(self):
        queue = PendingQueue()
        queue.add(make_app(app_id=1))
        with pytest.raises(SchedulerError, match="already pending"):
            queue.add(make_app(app_id=1))

    def test_remove_returns_app(self):
        queue = PendingQueue()
        app = make_app(app_id=1)
        queue.add(app)
        assert queue.remove(1) is app
        assert 1 not in queue
        assert queue.get(1) is None

    def test_remove_missing_rejected(self):
        with pytest.raises(SchedulerError, match="not pending"):
            PendingQueue().remove(7)


class TestOrdering:
    def test_arrival_order(self):
        queue = PendingQueue()
        late = make_app(arrival=100.0, app_id=0)
        early = make_app(arrival=5.0, app_id=1)
        queue.add(late)
        queue.add(early)
        ordered = queue.in_arrival_order()
        assert [a.app_id for a in ordered] == [1, 0]
        assert queue.oldest() is early

    def test_tie_breaks_by_app_id(self):
        queue = PendingQueue()
        second = make_app(arrival=5.0, app_id=2)
        first = make_app(arrival=5.0, app_id=1)
        queue.add(second)
        queue.add(first)
        assert [a.app_id for a in queue.in_arrival_order()] == [1, 2]

    def test_oldest_of_empty_is_none(self):
        assert PendingQueue().oldest() is None

    def test_iteration_snapshot_is_safe(self):
        queue = PendingQueue()
        for i in range(3):
            queue.add(make_app(app_id=i))
        seen = []
        for app in queue:
            seen.append(app.app_id)
            if app.app_id == 0:
                queue.remove(2)
        assert seen == [0, 1, 2]


class TestTombstones:
    """O(1) removal: tombstoned slots, compaction and self_check."""

    def fill(self, count):
        queue = PendingQueue()
        for i in range(count):
            queue.add(make_app(arrival=float(i), app_id=i))
        return queue

    def test_removal_leaves_order_intact(self):
        queue = self.fill(8)
        queue.remove(0)
        queue.remove(3)
        queue.remove(7)
        assert [a.app_id for a in queue.in_arrival_order()] == [1, 2, 4, 5, 6]
        assert len(queue) == 5
        queue.self_check()

    def test_interleaved_add_remove(self):
        queue = self.fill(4)
        queue.remove(1)
        queue.add(make_app(arrival=99.0, app_id=10))
        queue.remove(2)
        queue.add(make_app(arrival=100.0, app_id=11))
        assert [a.app_id for a in queue.in_arrival_order()] == [0, 3, 10, 11]
        assert 1 not in queue and 2 not in queue
        queue.self_check()

    def test_compaction_reclaims_tombstones(self):
        # Remove far more than the compaction threshold: the backing
        # list must shrink back instead of accumulating dead slots.
        queue = self.fill(100)
        for app_id in range(80):
            queue.remove(app_id)
        assert len(queue) == 20
        assert len(queue._apps) < 100
        assert queue._dead * 2 < max(1, len(queue._apps))
        assert [a.app_id for a in queue.in_arrival_order()] == list(
            range(80, 100)
        )
        queue.self_check()

    def test_readd_after_remove(self):
        queue = self.fill(3)
        removed = queue.remove(1)
        queue.add(removed)
        assert [a.app_id for a in queue.in_arrival_order()] == [0, 1, 2]
        queue.self_check()

    def test_self_check_detects_drift(self):
        queue = self.fill(4)
        queue.remove(2)
        queue._dead += 1  # simulate bookkeeping corruption
        with pytest.raises(SchedulerError, match="tombstone drift"):
            queue.self_check()

    def test_self_check_detects_broken_position(self):
        queue = self.fill(4)
        queue._positions[0] = 2  # point app 0 at app 2's slot
        with pytest.raises(SchedulerError, match="position map"):
            queue.self_check()

    def test_drain_to_empty_and_reuse(self):
        queue = self.fill(40)
        for app_id in range(40):
            queue.remove(app_id)
        assert len(queue) == 0
        assert queue.oldest() is None
        queue.add(make_app(app_id=77))
        assert [a.app_id for a in queue.in_arrival_order()] == [77]
        queue.self_check()
