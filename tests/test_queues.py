"""Tests for the pending queue (repro.hypervisor.queues)."""

from __future__ import annotations

import pytest

from repro.errors import SchedulerError
from repro.hypervisor.queues import PendingQueue
from tests.test_application_state import make_app


class TestMembership:
    def test_add_and_contains(self):
        queue = PendingQueue()
        app = make_app(app_id=1)
        queue.add(app)
        assert 1 in queue
        assert queue.get(1) is app
        assert len(queue) == 1

    def test_duplicate_add_rejected(self):
        queue = PendingQueue()
        queue.add(make_app(app_id=1))
        with pytest.raises(SchedulerError, match="already pending"):
            queue.add(make_app(app_id=1))

    def test_remove_returns_app(self):
        queue = PendingQueue()
        app = make_app(app_id=1)
        queue.add(app)
        assert queue.remove(1) is app
        assert 1 not in queue
        assert queue.get(1) is None

    def test_remove_missing_rejected(self):
        with pytest.raises(SchedulerError, match="not pending"):
            PendingQueue().remove(7)


class TestOrdering:
    def test_arrival_order(self):
        queue = PendingQueue()
        late = make_app(arrival=100.0, app_id=0)
        early = make_app(arrival=5.0, app_id=1)
        queue.add(late)
        queue.add(early)
        ordered = queue.in_arrival_order()
        assert [a.app_id for a in ordered] == [1, 0]
        assert queue.oldest() is early

    def test_tie_breaks_by_app_id(self):
        queue = PendingQueue()
        second = make_app(arrival=5.0, app_id=2)
        first = make_app(arrival=5.0, app_id=1)
        queue.add(second)
        queue.add(first)
        assert [a.app_id for a in queue.in_arrival_order()] == [1, 2]

    def test_oldest_of_empty_is_none(self):
        assert PendingQueue().oldest() is None

    def test_iteration_snapshot_is_safe(self):
        queue = PendingQueue()
        for i in range(3):
            queue.add(make_app(app_id=i))
        seen = []
        for app in queue:
            seen.append(app.app_id)
            if app.app_id == 0:
                queue.remove(2)
        assert seen == [0, 1, 2]
