"""Tests for saturation analysis and goal numbers (repro.core.saturation)."""

from __future__ import annotations

import pytest

from repro.apps.catalog import get_benchmark
from repro.config import SystemConfig
from repro.core.saturation import (
    SaturationAnalyzer,
    find_saturation_point,
    saturation_sweep,
)
from repro.errors import SolverError
from repro.taskgraph.builders import (
    chain_graph,
    parallel_chains_graph,
    single_task_graph,
)


@pytest.fixture
def config():
    return SystemConfig(num_slots=6)


class TestSweep:
    def test_latencies_monotone_nonincreasing(self, config):
        graph = chain_graph("c", [100.0, 100.0, 100.0])
        sweep = saturation_sweep(graph, 5, config)
        assert len(sweep) == 6
        assert all(a >= b - 1e-9 for a, b in zip(sweep, sweep[1:]))

    def test_single_task_flat_curve(self, config):
        graph = single_task_graph("s", 100.0)
        sweep = saturation_sweep(graph, 5, config)
        assert all(value == sweep[0] for value in sweep)


class TestSaturationPoint:
    def test_flat_curve_saturates_at_one(self):
        assert find_saturation_point([100.0, 100.0, 100.0], 0.05) == 1

    def test_knee_detected(self):
        assert find_saturation_point([100.0, 60.0, 59.0, 58.5], 0.05) == 2

    def test_plateau_then_drop_not_fooled(self):
        # 2 -> 3 is flat but 3 -> 4 improves 20%: saturation is 4, not 2.
        assert find_saturation_point([100.0, 80.0, 80.0, 64.0], 0.05) == 4

    def test_empty_sweep_rejected(self):
        with pytest.raises(SolverError, match="non-empty"):
            find_saturation_point([], 0.05)


class TestGoalNumbers:
    def test_single_task_app_goal_is_one(self, config):
        analyzer = SaturationAnalyzer(config)
        graph = single_task_graph("s", 100.0)
        assert analyzer.goal_number(graph, 10) == 1

    def test_multi_task_batched_app_goal_at_least_two(self, config):
        analyzer = SaturationAnalyzer(config)
        graph = chain_graph("c", [100.0, 100.0, 100.0])
        assert analyzer.goal_number(graph, 5) >= 2

    def test_batch_one_chain_goal_can_stay_one(self, config):
        # Without batch parallelism a pure chain cannot use a second slot
        # for compute (only for hiding reconfig).
        analyzer = SaturationAnalyzer(config)
        graph = chain_graph("c", [1000.0, 1000.0])
        goal = analyzer.goal_number(graph, 1)
        assert goal <= 2

    def test_goal_never_exceeds_tasks_or_slots(self, config):
        analyzer = SaturationAnalyzer(config)
        graph = chain_graph("c", [50.0, 50.0])
        assert analyzer.goal_number(graph, 30) <= 2
        wide = parallel_chains_graph("p", 8, [50.0, 50.0])
        assert analyzer.goal_number(wide, 30) <= config.num_slots

    def test_parallel_graph_goal_exceeds_chain_goal(self, config):
        analyzer = SaturationAnalyzer(config)
        chain = chain_graph("c", [100.0] * 4)
        wide = parallel_chains_graph("p", 4, [100.0, 100.0])
        assert analyzer.goal_number(wide, 5) >= analyzer.goal_number(chain, 5)

    def test_caching_returns_same_object_fast(self, config):
        analyzer = SaturationAnalyzer(config)
        graph = get_benchmark("of").graph
        first = analyzer.goal_number(graph, 5)
        second = analyzer.goal_number(graph, 5)
        assert first == second
        # The memo lives on the graph object and is shared across
        # analyzer instances (cross-run reuse in sweeps).
        key = (5, config.num_slots, config.reconfig_ms)
        assert key in graph._saturation_sweep_cache
        fresh = SaturationAnalyzer(config)
        assert fresh.goal_number(graph, 5) == first


class TestBenchmarkGoals:
    def test_alexnet_benefits_from_many_slots(self):
        config = SystemConfig()  # 10 slots
        analyzer = SaturationAnalyzer(config)
        alexnet = get_benchmark("alexnet").graph
        lenet = get_benchmark("lenet").graph
        assert analyzer.goal_number(alexnet, 5) > analyzer.goal_number(
            lenet, 5
        )
