"""Tests for random DAG generation and trace export."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExperimentError, TaskGraphError
from repro.schedulers.registry import make_scheduler
from repro.sim.trace_export import (
    load_trace,
    save_trace,
    trace_from_dict,
)
from repro.taskgraph.random_dags import (
    random_layered_dag,
    random_series_parallel_dag,
)
from tests.conftest import request, run_workload, small_config


class TestRandomLayered:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_always_valid_dag(self, seed):
        graph = random_layered_dag(seed)
        # Construction validates acyclicity; check connectivity per layer.
        for task_id in graph.topological_order:
            if graph.task(task_id).stage > 0:
                assert graph.predecessors(task_id)

    def test_seeded_determinism(self):
        a = random_layered_dag(5)
        b = random_layered_dag(5)
        assert a.topological_order == b.topological_order
        assert a.edges == b.edges

    def test_validation(self):
        with pytest.raises(TaskGraphError):
            random_layered_dag(1, max_layers=0)
        with pytest.raises(TaskGraphError):
            random_layered_dag(1, latency_range_ms=(0.0, 1.0))
        with pytest.raises(TaskGraphError):
            random_layered_dag(1, edge_probability=1.5)


class TestRandomSeriesParallel:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_always_valid(self, seed):
        graph = random_series_parallel_dag(seed, depth=3)
        assert graph.num_tasks >= 1
        assert graph.depth() >= 1

    def test_deterministic(self):
        assert (
            random_series_parallel_dag(9).edges
            == random_series_parallel_dag(9).edges
        )

    def test_schedulable_end_to_end(self):
        graph = random_series_parallel_dag(3, depth=3)
        _, results = run_workload(
            make_scheduler("nimblock"),
            [request(graph, batch_size=2)],
            small_config(num_slots=4),
        )
        assert results[0].response_ms > 0


class TestTraceExport:
    def _traced_run(self):
        graph = random_layered_dag(11, max_layers=3, max_width=2)
        hv, _ = run_workload(
            make_scheduler("fcfs"), [request(graph, batch_size=2)],
            small_config(),
        )
        return hv.trace

    def test_round_trip_exact(self, tmp_path):
        trace = self._traced_run()
        path = save_trace(trace, tmp_path / "run.json", label="t")
        rebuilt = load_trace(path)
        assert len(rebuilt) == len(trace)
        assert rebuilt.events == trace.events

    def test_aggregates_survive_round_trip(self, tmp_path):
        trace = self._traced_run()
        rebuilt = load_trace(save_trace(trace, tmp_path / "r.json"))
        assert rebuilt.run_busy_ms() == trace.run_busy_ms()
        assert rebuilt.reconfig_busy_ms() == trace.reconfig_busy_ms()

    def test_timeline_renders_from_loaded_trace(self, tmp_path):
        from repro.sim.timeline import render_timeline

        trace = self._traced_run()
        rebuilt = load_trace(save_trace(trace, tmp_path / "r.json"))
        art = render_timeline(rebuilt, num_slots=2)
        assert "#" in art

    def test_validation(self, tmp_path):
        with pytest.raises(ExperimentError, match="no trace file"):
            load_trace(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{]")
        with pytest.raises(ExperimentError, match="not valid JSON"):
            load_trace(bad)
        with pytest.raises(ExperimentError, match="unsupported"):
            trace_from_dict({"format": 9, "events": []})
        with pytest.raises(ExperimentError, match="bad trace event"):
            trace_from_dict(
                {"format": 1, "events": [{"kind": "nope", "time": 0.0}]}
            )
