"""Determinism and cache-integrity tests for the parallel sweep executor.

The contract under test: serial execution, parallel ``prewarm`` at any
worker count, and a disk-cache round trip (including one through a fresh
interpreter) all yield identical ``AppResult`` lists — which is what makes
parallel fan-out and persistent caching safe substitutes for the paper's
serial re-simulation.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import sys
from dataclasses import asdict
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings as hyp_settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.errors import ExperimentError
from repro.experiments import parallel
from repro.experiments.runner import (
    BASE_SEED,
    ExperimentSettings,
    RunCache,
    config_fingerprint,
    sequence_fingerprint,
)
from repro.schedulers.registry import scheduler_factories
from repro.workload.events import EventSequence, EventSpec
from repro.workload.scenarios import STRESS, scenario_sequence

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")

#: Every registered policy name, aliases included.
REGISTRY = sorted(scheduler_factories())

#: Small but non-trivial stimuli shared by the determinism tests.
SETTINGS = ExperimentSettings(num_sequences=2, num_events=6)


def _sequences():
    return [
        scenario_sequence(STRESS, seed, SETTINGS.num_events)
        for seed in SETTINGS.seeds()
    ]


class TestParallelDeterminism:
    def test_prewarm_matches_serial_for_every_registered_scheduler(self):
        """prewarm(jobs=4) and the serial path agree for the whole registry."""
        sequences = _sequences()
        serial = RunCache()
        fanned = RunCache()
        performed = fanned.prewarm(REGISTRY, sequences, jobs=4)
        assert performed == len(REGISTRY) * len(sequences)
        for name in REGISTRY:
            for sequence in sequences:
                assert fanned.results(name, sequence) == serial.results(
                    name, sequence
                ), f"parallel run diverged for {name} on {sequence.label}"
        # Everything the comparison consumed came from memory, not re-runs.
        assert fanned.simulations == performed

    def test_prewarm_worker_count_does_not_change_results(self):
        sequences = _sequences()
        by_jobs = {}
        for jobs in (1, 2, 5):
            cache = RunCache()
            cache.prewarm(("nimblock", "rr"), sequences, jobs=jobs)
            by_jobs[jobs] = [
                cache.results(name, seq)
                for name in ("nimblock", "rr")
                for seq in sequences
            ]
        assert by_jobs[1] == by_jobs[2] == by_jobs[5]

    def test_prewarm_skips_known_runs(self):
        sequences = _sequences()
        cache = RunCache()
        assert cache.prewarm(("fcfs",), sequences, jobs=2) == len(sequences)
        assert cache.prewarm(("fcfs",), sequences, jobs=2) == 0
        assert cache.simulations == len(sequences)

    def test_chaos_cells_parallel_matches_serial(self):
        """Seeded fault streams reconstruct identically in workers."""
        from repro.workload.scenarios import MIXED_FAULTS

        sequence = scenario_sequence(STRESS, BASE_SEED, 6)
        tasks = [
            (name, sequence, MIXED_FAULTS.fault_config(0.1, seed=7), None)
            for name in ("rr", "nimblock")
        ]
        serial = parallel.chaos_cells(tasks, jobs=1)
        fanned = parallel.chaos_cells(tasks, jobs=2)
        assert serial == fanned
        assert any(cell.total_faults > 0 for cell in serial)

    @hyp_settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 10**6), num_events=st.integers(3, 8))
    def test_property_serial_equals_parallel(self, seed, num_events):
        sequence = scenario_sequence(STRESS, seed, num_events)
        tasks = [
            ("fcfs", sequence, None, "full"),
            ("nimblock", sequence, None, "metrics"),
        ]
        assert parallel.map_runs(tasks, jobs=2) == parallel.map_runs(
            tasks, jobs=1
        )

    def test_fanout_propagates_worker_errors(self):
        events = [EventSpec("lenet", 1, 3, 0.0)]
        bad = EventSequence(events, label="bad-scheduler-seq")
        with pytest.raises(Exception):
            parallel.map_runs(
                [("no_such_policy", bad, None, "full")], jobs=2
            )

    def test_effective_jobs_validation(self):
        assert parallel.effective_jobs(3) == 3
        assert parallel.effective_jobs(None) >= 1
        with pytest.raises(ExperimentError):
            parallel.effective_jobs(0)


class TestDiskCache:
    def test_round_trip_is_lossless(self, tmp_path):
        sequence = _sequences()[0]
        writer = RunCache(cache_dir=tmp_path)
        expected = writer.results("nimblock", sequence)
        reader = RunCache(cache_dir=tmp_path)
        assert reader.results("nimblock", sequence) == expected
        assert reader.simulations == 0
        assert reader.disk_hits == 1

    def test_round_trip_in_fresh_process(self, tmp_path):
        """Write here, reload in a fresh interpreter: byte-identical."""
        sequence = _sequences()[0]
        writer = RunCache(cache_dir=tmp_path)
        expected = [asdict(r) for r in writer.results("nimblock", sequence)]
        script = (
            "import json, sys\n"
            "from dataclasses import asdict\n"
            "from repro.experiments.runner import RunCache, "
            "ExperimentSettings\n"
            "from repro.workload.scenarios import STRESS, scenario_sequence\n"
            "seed, events, cache_dir = int(sys.argv[1]), int(sys.argv[2]), "
            "sys.argv[3]\n"
            "cache = RunCache(cache_dir=cache_dir)\n"
            "seq = scenario_sequence(STRESS, seed, events)\n"
            "results = cache.results('nimblock', seq)\n"
            "assert cache.simulations == 0, 'fresh process re-simulated'\n"
            "print(json.dumps([asdict(r) for r in results]))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [
                sys.executable, "-c", script,
                str(SETTINGS.seeds()[0]), str(SETTINGS.num_events),
                str(tmp_path),
            ],
            capture_output=True, text=True, env=env, check=False,
        )
        assert proc.returncode == 0, proc.stderr
        assert json.loads(proc.stdout) == expected

    def test_prewarm_populates_disk_for_fresh_instances(self, tmp_path):
        sequences = _sequences()
        writer = RunCache(cache_dir=tmp_path, jobs=2)
        writer.prewarm(("rr", "fcfs"), sequences)
        reader = RunCache(cache_dir=tmp_path)
        assert reader.prewarm(("rr", "fcfs"), sequences, jobs=2) == 0
        assert reader.simulations == 0
        assert reader.disk_hits == 2 * len(sequences)
        for name in ("rr", "fcfs"):
            for sequence in sequences:
                assert reader.results(name, sequence) == writer.results(
                    name, sequence
                )

    def test_config_change_misses_instead_of_stale_hit(self, tmp_path):
        sequence = _sequences()[0]
        ten_slots = RunCache(SystemConfig(num_slots=10), cache_dir=tmp_path)
        ten_slots.results("nimblock", sequence)
        five_slots = RunCache(SystemConfig(num_slots=5), cache_dir=tmp_path)
        five_slots.results("nimblock", sequence)
        assert five_slots.simulations == 1, (
            "a different SystemConfig must never be served a cached run"
        )
        assert five_slots.disk_hits == 0

    def test_invalidate_memory_and_disk(self, tmp_path):
        sequence = _sequences()[0]
        cache = RunCache(cache_dir=tmp_path)
        cache.results("fcfs", sequence)
        cache.invalidate()
        cache.results("fcfs", sequence)  # memory dropped, disk still warm
        assert cache.simulations == 1
        assert cache.disk_hits == 1
        cache.invalidate(disk=True)
        cache.results("fcfs", sequence)
        assert cache.simulations == 2

    def test_corrupt_entry_raises_experiment_error(self, tmp_path):
        sequence = _sequences()[0]
        cache = RunCache(cache_dir=tmp_path)
        cache.results("fcfs", sequence)
        for path in Path(tmp_path).glob("*.json"):
            path.write_text("{not json", encoding="utf-8")
        fresh = RunCache(cache_dir=tmp_path)
        with pytest.raises(ExperimentError, match="corrupt"):
            fresh.results("fcfs", sequence)


class TestCacheKeying:
    def test_label_collision_with_different_events_raises(self):
        events_a = [EventSpec("lenet", 1, 3, 0.0)]
        events_b = [EventSpec("imgc", 2, 9, 0.0)]
        cache = RunCache()
        cache.results("fcfs", EventSequence(events_a, label="dup"))
        with pytest.raises(ExperimentError, match="label 'dup' reused"):
            cache.results("fcfs", EventSequence(events_b, label="dup"))

    def test_same_label_same_events_is_a_hit(self):
        events = [EventSpec("lenet", 1, 3, 0.0)]
        cache = RunCache()
        first = cache.results("fcfs", EventSequence(events, label="same"))
        second = cache.results("fcfs", EventSequence(list(events), label="same"))
        assert first == second
        assert cache.simulations == 1
        assert cache.memory_hits == 1

    def test_unlabelled_sequence_rejected(self):
        events = [EventSpec("lenet", 1, 3, 0.0)]
        with pytest.raises(ExperimentError, match="labelled"):
            RunCache().results("fcfs", EventSequence(events))

    def test_sequence_fingerprint_tracks_contents(self):
        seq_a = scenario_sequence(STRESS, 1, 5)
        seq_b = scenario_sequence(STRESS, 2, 5)
        assert sequence_fingerprint(seq_a) != sequence_fingerprint(seq_b)
        assert sequence_fingerprint(seq_a) == sequence_fingerprint(
            scenario_sequence(STRESS, 1, 5)
        )

    def test_config_fingerprint_stable_across_instances(self):
        assert config_fingerprint(SystemConfig()) == config_fingerprint(
            SystemConfig()
        )
        assert config_fingerprint(SystemConfig()) != config_fingerprint(
            SystemConfig(num_slots=9)
        )


def _nan_equal(a, b):
    """Structural equality where NaN == NaN (empty-mean aggregates)."""
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (math.isnan(a) and math.isnan(b))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            _nan_equal(a[k], b[k]) for k in a
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            _nan_equal(x, y) for x, y in zip(a, b)
        )
    return a == b


class TestExperimentParityThroughPrewarm:
    """Whole experiment modules give identical figures either way."""

    def test_fig5_parallel_equals_serial(self):
        from repro.experiments import fig5_response

        settings = ExperimentSettings(num_sequences=1, num_events=6)
        serial = fig5_response.run(cache=RunCache(), settings=settings)
        fanned = fig5_response.run(cache=RunCache(jobs=3), settings=settings)
        assert serial == fanned

    def test_ext_faults_parallel_equals_serial(self):
        from repro.experiments import ext_faults

        settings = ExperimentSettings(num_sequences=1, num_events=5)
        kwargs = dict(
            settings=settings,
            fault_rates=(0.0, 0.1),
            schedulers=("rr", "nimblock"),
        )
        serial = ext_faults.run(cache=RunCache(), jobs=1, **kwargs)
        fanned = ext_faults.run(cache=RunCache(), jobs=3, **kwargs)
        # mttr is NaN at rate 0.0 (no recoveries), so plain == can't be
        # used even for identical results.
        assert _nan_equal(asdict(serial), asdict(fanned))
