"""Property-based tests (hypothesis) on the remediation pipeline.

Two families, matching the PR's determinism satellites:

* **detector determinism** — ``detect`` is a pure function of the
  observation *values*: shuffling the window history, splitting it into
  arbitrary merge chunks, or prepending inactive windows never changes
  the emitted symptoms;
* **proposer idempotence** — applying any proposed patch twice equals
  applying it once, and ``patch_id`` is a stable content address
  (equal patches hash equal, distinct knob sets hash distinct).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autotune import (
    CounterDeltas,
    DetectorConfig,
    TunableConfig,
    WindowSignal,
    detect,
    propose,
)
from repro.metrics.slo import SloTarget

DET = DetectorConfig(slo=SloTarget(p99_ms=1_000.0, max_loss_frac=0.05))

window_signals = st.builds(
    WindowSignal,
    index=st.integers(min_value=0, max_value=30),
    arrived=st.integers(min_value=0, max_value=40),
    completed=st.integers(min_value=0, max_value=40),
    shed=st.integers(min_value=0, max_value=10),
    dropped=st.integers(min_value=0, max_value=5),
    p99_ms=st.one_of(
        st.just(float("nan")),
        st.floats(min_value=1.0, max_value=50_000.0, allow_nan=False),
    ),
    peak_pending=st.integers(min_value=0, max_value=64),
)

counter_deltas = st.builds(
    CounterDeltas,
    overload_enters=st.integers(min_value=0, max_value=12),
    overload_ms=st.floats(min_value=0.0, max_value=60_000.0,
                          allow_nan=False),
    starvations=st.integers(min_value=0, max_value=4),
    stalls=st.integers(min_value=0, max_value=6),
    energy_j=st.floats(min_value=0.0, max_value=10_000.0,
                       allow_nan=False),
    span_ms=st.floats(min_value=0.0, max_value=600_000.0,
                      allow_nan=False),
    power_cap_w=st.one_of(
        st.none(),
        st.floats(min_value=5.0, max_value=100.0, allow_nan=False),
    ),
)


def unique_by_index(windows):
    """Windows deduplicated by index (last write wins), like a real
    window table — detect() sorting assumes one signal per index."""
    table = {w.index: w for w in windows}
    return list(table.values())


class TestDetectorDeterminism:
    @given(
        windows=st.lists(window_signals, max_size=12),
        counters=counter_deltas,
        shuffle=st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_presentation_order_never_matters(
        self, windows, counters, shuffle
    ):
        windows = unique_by_index(windows)
        baseline = detect(windows, counters, DET)
        reordered = list(windows)
        shuffle.shuffle(reordered)
        assert detect(reordered, counters, DET) == baseline

    @given(
        windows=st.lists(window_signals, max_size=12),
        counters=counter_deltas,
        extra_indices=st.lists(
            st.integers(min_value=31, max_value=60), max_size=4
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_inactive_windows_are_invisible(
        self, windows, counters, extra_indices
    ):
        windows = unique_by_index(windows)
        baseline = detect(windows, counters, DET)
        padded = windows + [WindowSignal(index=i) for i in extra_indices]
        assert detect(padded, counters, DET) == baseline

    @given(
        windows=st.lists(window_signals, max_size=12),
        counters=counter_deltas,
    )
    @settings(max_examples=60, deadline=None)
    def test_detect_is_pure_and_canonically_ordered(
        self, windows, counters
    ):
        windows = unique_by_index(windows)
        first = detect(windows, counters, DET)
        second = detect(windows, counters, DET)
        assert first == second
        kinds = [s.kind for s in first]
        assert len(set(kinds)) == len(kinds)
        from repro.autotune import SYMPTOM_KINDS

        positions = [SYMPTOM_KINDS.index(k) for k in kinds]
        assert positions == sorted(positions)


# (admission, knobs) sampled together: knobs must be valid for the
# policy or TunableConfig.admission_policy() rightly refuses them.
admission_with_knobs = st.one_of(
    st.just(("unbounded", ())),
    st.just(("shed", ())),
    st.just(("shed", (("queue_capacity", 32),))),
    st.just(("shed", (("low_watermark", 8), ("queue_capacity", 16)))),
    st.just(("degrade", ())),
    st.just(("degrade", (("slot_cap", 2),))),
)

tunables = st.builds(
    lambda scheduler, adm, watchdog_knobs: TunableConfig(
        scheduler=scheduler,
        admission=adm[0],
        admission_knobs=adm[1],
        watchdog_knobs=watchdog_knobs,
    ),
    scheduler=st.sampled_from(("nimblock", "fcfs", "prema")),
    adm=admission_with_knobs,
    watchdog_knobs=st.one_of(
        st.none(),
        st.just(()),
        st.just((("stall_passes", 40), ("starvation_passes", 400))),
    ),
)


def plausible_symptoms(windows_needed=6):
    """A symptom soup covering every proposer rule at once."""
    windows = [
        WindowSignal(index=i, arrived=20, completed=4, shed=8,
                     p99_ms=9_000.0, peak_pending=30 + i)
        for i in range(windows_needed)
    ]
    counters = CounterDeltas(
        overload_enters=8, overload_ms=30_000.0, starvations=2, stalls=4,
        energy_j=5_000.0, span_ms=60_000.0, power_cap_w=45.0,
    )
    return detect(windows, counters, DET)


class TestProposerIdempotence:
    @given(tuning=tunables)
    @settings(max_examples=60, deadline=None)
    def test_patches_are_idempotent(self, tuning):
        # Knob sets that fail policy construction are fine for the
        # pure apply/id contracts being tested here.
        for patch in propose(plausible_symptoms(), tuning):
            once = patch.apply(tuning)
            twice = patch.apply(once)
            assert twice == once
            assert patch.apply(twice) == once

    @given(tuning=tunables)
    @settings(max_examples=60, deadline=None)
    def test_candidates_deduped_nonnoop_and_risk_sorted(self, tuning):
        patches = propose(plausible_symptoms(), tuning)
        ids = [p.patch_id for p in patches]
        assert len(ids) == len(set(ids))
        assert all(p.apply(tuning) != tuning for p in patches)
        assert [p.risk for p in patches] == sorted(
            p.risk for p in patches
        )

    @given(tuning=tunables)
    @settings(max_examples=30, deadline=None)
    def test_patch_id_is_a_stable_content_address(self, tuning):
        patches = propose(plausible_symptoms(), tuning)
        again = propose(plausible_symptoms(), tuning)
        assert [p.patch_id for p in patches] == [
            p.patch_id for p in again
        ]
        for a, b in zip(patches, again):
            assert a == b

    def test_propose_never_mutates_tuning(self):
        tuning = TunableConfig()
        snapshot = tuning.to_dict()
        propose(plausible_symptoms(), tuning)
        assert tuning.to_dict() == snapshot


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
