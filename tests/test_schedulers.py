"""Behavioural tests for the comparison schedulers (repro.schedulers)."""

from __future__ import annotations

import pytest

from repro.errors import SchedulerError
from repro.schedulers.registry import (
    ALL_SCHEDULERS,
    SHARING_SCHEDULERS,
    make_scheduler,
    scheduler_factories,
)
from repro.sim.trace import TraceKind
from repro.taskgraph.builders import chain_graph
from tests.conftest import request, run_named, small_config


class TestRegistry:
    def test_all_names_instantiable(self):
        for name in scheduler_factories():
            policy = make_scheduler(name)
            assert policy.decide is not None

    def test_aliases_resolve(self):
        assert make_scheduler("no_sharing").name == "baseline"
        assert make_scheduler("round_robin").name == "rr"

    def test_unknown_name_rejected(self):
        with pytest.raises(SchedulerError, match="unknown scheduler"):
            make_scheduler("cfs")

    def test_registry_constants(self):
        assert ALL_SCHEDULERS[0] == "baseline"
        assert set(SHARING_SCHEDULERS) < set(ALL_SCHEDULERS)

    def test_fresh_instance_per_call(self):
        assert make_scheduler("nimblock") is not make_scheduler("nimblock")

    def test_variant_names(self):
        assert make_scheduler("nimblock_no_pipe").name == "nimblock_no_pipe"
        assert (
            make_scheduler("nimblock_no_preempt_no_pipe").name
            == "nimblock_no_preempt_no_pipe"
        )


class TestBaselineExclusivity:
    def test_never_two_apps_on_board(self):
        g = chain_graph("g", [50.0, 50.0])
        reqs = [request(g, batch_size=2, arrival_ms=float(i * 10))
                for i in range(3)]
        hv, _ = run_named("baseline", reqs, small_config(num_slots=4))
        active = set()
        current = None
        for event in hv.trace:
            if event.kind == TraceKind.ITEM_START:
                if current is None:
                    current = event.app_id
                active.add(event.app_id)
                assert event.app_id == current
            elif event.kind == TraceKind.APP_RETIRED:
                if event.app_id == current:
                    current = None
        assert active == {0, 1, 2}


class TestPremaBehaviour:
    def test_shortest_candidate_scheduled_first(self):
        long_g = chain_graph("long", [500.0])
        short_g = chain_graph("short", [50.0])
        config = small_config(num_slots=1)
        # Same priority, same arrival: both candidates immediately; PREMA
        # picks the shorter one despite the longer arriving first.
        reqs = [
            request(long_g, batch_size=5, priority=3, arrival_ms=0.0),
            request(short_g, batch_size=1, priority=3, arrival_ms=0.0),
        ]
        hv, results = run_named("prema", reqs, config)
        first_start = hv.trace.first(TraceKind.ITEM_START)
        assert first_start.app_id == 1

    def test_high_priority_jumps_low(self):
        g = chain_graph("g", [100.0])
        config = small_config(num_slots=1)
        reqs = [
            request(g, batch_size=10, priority=1, arrival_ms=0.0),
            request(g, batch_size=10, priority=1, arrival_ms=10.0),
            request(g, batch_size=1, priority=9, arrival_ms=20.0),
        ]
        hv, results = run_named("prema", reqs, config)
        # The priority-9 app must not wait behind BOTH priority-1 apps.
        assert results[2].retire_ms < results[1].retire_ms


class TestRoundRobinBehaviour:
    def test_tasks_spread_across_slot_queues(self):
        g = chain_graph("g", [100.0])
        reqs = [request(g, arrival_ms=0.0) for _ in range(4)]
        hv, _ = run_named("rr", reqs, small_config(num_slots=2))
        slots_used = {
            e.slot for e in hv.trace.of_kind(TraceKind.TASK_CONFIG_START)
        }
        assert slots_used == {0, 1}

    def test_priority_sorts_within_queue(self):
        g = chain_graph("g", [200.0])
        config = small_config(num_slots=1)
        reqs = [
            request(g, priority=1, arrival_ms=0.0),
            request(g, priority=1, arrival_ms=1.0),
            request(g, priority=9, arrival_ms=2.0),
        ]
        hv, results = run_named("rr", reqs, config)
        # App 0 occupies the slot first; among the queued two, the
        # priority-9 app must run before the earlier priority-1 app.
        assert results[2].retire_ms < results[1].retire_ms

    def test_task_never_migrates_queues(self):
        # One slot's queue backs up while the other idles: the RR
        # weakness the paper exploits. Construct it: two long apps land
        # in both queues, then a third app queued behind slot 0 stays
        # there even when slot 1 frees first.
        long_g = chain_graph("lg", [400.0])
        short_g = chain_graph("sg", [50.0])
        config = small_config(num_slots=2)
        reqs = [
            request(long_g, arrival_ms=0.0),
            request(short_g, arrival_ms=1.0),
            request(long_g, arrival_ms=2.0),
        ]
        hv, _ = run_named("rr", reqs, config)
        configs = hv.trace.of_kind(TraceKind.TASK_CONFIG_START)
        by_app = {e.app_id: e.slot for e in configs}
        # App 2 was issued to the emptier queue at issue time; whichever
        # slot it got, it must have been configured there and nowhere else.
        app2_slots = {e.slot for e in configs if e.app_id == 2}
        assert len(app2_slots) == 1


class TestSharingSchedulersComplete:
    @pytest.mark.parametrize("name", list(SHARING_SCHEDULERS) + ["baseline"])
    def test_mixed_workload_completes(self, name):
        g1 = chain_graph("g1", [50.0, 50.0])
        g2 = chain_graph("g2", [30.0])
        reqs = [
            request(g1, batch_size=3, priority=1, arrival_ms=0.0),
            request(g2, batch_size=2, priority=9, arrival_ms=25.0),
            request(g1, batch_size=1, priority=3, arrival_ms=60.0),
        ]
        _, results = run_named(name, reqs, small_config(num_slots=3))
        assert len(results) == 3
        assert all(r.response_ms > 0 for r in results)
