"""Tests for the discrete-event engine (repro.sim.engine)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import SimulationEngine


class TestScheduling:
    def test_starts_at_time_zero(self):
        assert SimulationEngine().now == 0.0

    def test_fires_in_time_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(5.0, lambda now: fired.append(("b", now)))
        engine.schedule_at(1.0, lambda now: fired.append(("a", now)))
        engine.schedule_at(9.0, lambda now: fired.append(("c", now)))
        engine.run()
        assert fired == [("a", 1.0), ("b", 5.0), ("c", 9.0)]

    def test_same_time_fires_in_priority_then_schedule_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(3.0, lambda now: fired.append("late"), priority=5)
        engine.schedule_at(3.0, lambda now: fired.append("first"), priority=-1)
        engine.schedule_at(3.0, lambda now: fired.append("second"), priority=-1)
        engine.run()
        assert fired == ["first", "second", "late"]

    def test_schedule_after_is_relative(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(10.0, lambda now: engine.schedule_after(
            5.0, lambda t: fired.append(t)))
        engine.run()
        assert fired == [15.0]

    def test_rejects_past_times(self):
        engine = SimulationEngine()
        engine.schedule_at(10.0, lambda now: None)
        engine.run()
        with pytest.raises(SimulationError, match="before current time"):
            engine.schedule_at(5.0, lambda now: None)

    def test_rejects_negative_delay(self):
        with pytest.raises(SimulationError, match="negative delay"):
            SimulationEngine().schedule_after(-1.0, lambda now: None)


class TestCancellation:
    def test_cancelled_events_do_not_fire(self):
        engine = SimulationEngine()
        fired = []
        event = engine.schedule_at(1.0, lambda now: fired.append("x"))
        event.cancel()
        engine.run()
        assert fired == []

    def test_pending_excludes_cancelled(self):
        engine = SimulationEngine()
        keep = engine.schedule_at(1.0, lambda now: None)
        drop = engine.schedule_at(2.0, lambda now: None)
        drop.cancel()
        assert engine.pending == 1
        assert keep.time == 1.0


class TestRunControl:
    def test_run_until_stops_clock_at_horizon(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(1.0, lambda now: fired.append(1))
        engine.schedule_at(50.0, lambda now: fired.append(50))
        engine.run(until=10.0)
        assert fired == [1]
        assert engine.now == 10.0
        engine.run()
        assert fired == [1, 50]

    def test_run_until_inclusive(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(10.0, lambda now: fired.append(now))
        engine.run(until=10.0)
        assert fired == [10.0]

    def test_run_until_below_clock_never_rewinds(self):
        # Regression: a horizon below the already-advanced clock used to
        # rewind time; it must clamp at the current value instead.
        engine = SimulationEngine()
        engine.schedule_at(20.0, lambda now: None)
        engine.run()
        assert engine.now == 20.0
        engine.schedule_at(30.0, lambda now: None)
        engine.run(until=5.0)
        assert engine.now == 20.0
        engine.run(until=30.0)
        assert engine.now == 30.0

    def test_max_events_budget(self):
        engine = SimulationEngine()
        fired = []
        for i in range(5):
            engine.schedule_at(float(i), lambda now: fired.append(now))
        engine.run(max_events=3)
        assert len(fired) == 3

    def test_step_returns_false_when_empty(self):
        assert SimulationEngine().step() is False

    def test_processed_counts_events(self):
        engine = SimulationEngine()
        for i in range(4):
            engine.schedule_at(float(i), lambda now: None)
        engine.run()
        assert engine.processed == 4

    def test_reentrant_run_rejected(self):
        engine = SimulationEngine()

        def reenter(now):
            engine.run()

        engine.schedule_at(1.0, reenter)
        with pytest.raises(SimulationError, match="already running"):
            engine.run()

    def test_drain_clears_pending(self):
        engine = SimulationEngine()
        engine.schedule_at(1.0, lambda now: None)
        engine.drain()
        assert engine.pending == 0

    def test_live_counter_consistent_under_cancel(self):
        # The O(1) pending counter must stay exact through every
        # schedule/cancel/fire/drain combination, including the cases
        # that used to skew it: double-cancel, cancel-after-fire and
        # cancel-after-drain.
        engine = SimulationEngine()
        events = [
            engine.schedule_at(float(i), lambda now: None) for i in range(6)
        ]
        assert engine.pending == 6
        events[0].cancel()
        events[0].cancel()  # double cancel: counted once
        assert engine.pending == 5
        engine.run(until=2.0)  # fires events 1 and 2
        assert engine.processed == 2
        assert engine.pending == 3
        events[1].cancel()  # already fired: must not decrement
        assert engine.pending == 3
        events[3].cancel()
        assert engine.pending == 2
        engine.drain()
        assert engine.pending == 0
        events[4].cancel()  # drained: must not go negative
        assert engine.pending == 0

    def test_event_count_shape_matches_workload(self):
        # Microbenchmark shape: N scheduled timers process exactly N
        # events (the bench_core engine storm relies on this).
        engine = SimulationEngine()
        for i in range(100):
            engine.schedule_at(float(i % 7), lambda now: None, priority=i & 1)
        assert engine.pending == 100
        engine.run()
        assert engine.processed == 100
        assert engine.pending == 0


class TestDeterminism:
    def test_repeat_runs_identical(self):
        def run_once():
            engine = SimulationEngine()
            log = []
            for i in range(20):
                engine.schedule_at(
                    float(i % 7), lambda now, i=i: log.append((now, i))
                )
            engine.run()
            return log

        assert run_once() == run_once()
