"""Tests for runtime application state (repro.hypervisor.application)."""

from __future__ import annotations

import pytest

from repro.errors import SchedulerError, WorkloadError
from repro.hypervisor.application import (
    AppRequest,
    AppRun,
    TaskRunState,
)
from repro.taskgraph.builders import chain_graph, diamond_graph


def make_app(graph=None, batch=2, priority=3, arrival=0.0, app_id=0):
    graph = graph or chain_graph("c", [10.0, 20.0])
    request = AppRequest(
        name=graph.name, graph=graph, batch_size=batch,
        priority=priority, arrival_ms=arrival,
    )
    return AppRun(app_id, request, latency_estimate_ms=100.0)


class TestRequestValidation:
    def test_rejects_bad_batch(self):
        graph = chain_graph("c", [1.0])
        with pytest.raises(WorkloadError, match="batch"):
            AppRequest("c", graph, 0, 1, 0.0)

    def test_rejects_bad_priority(self):
        graph = chain_graph("c", [1.0])
        with pytest.raises(WorkloadError, match="priority"):
            AppRequest("c", graph, 1, 0, 0.0)

    def test_rejects_negative_arrival(self):
        graph = chain_graph("c", [1.0])
        with pytest.raises(WorkloadError, match="arrival"):
            AppRequest("c", graph, 1, 1, -1.0)


class TestInitialState:
    def test_token_starts_at_priority(self):
        assert make_app(priority=9).token == 9.0

    def test_tasks_start_pending_with_zero_progress(self):
        app = make_app()
        assert all(
            run.state == TaskRunState.PENDING and run.items_done == 0
            for run in app.tasks.values()
        )

    def test_rejects_bad_estimate(self):
        graph = chain_graph("c", [1.0])
        request = AppRequest("c", graph, 1, 1, 0.0)
        with pytest.raises(WorkloadError, match="estimate"):
            AppRun(0, request, latency_estimate_ms=0.0)

    def test_age_key_orders_by_arrival_then_id(self):
        early = make_app(arrival=0.0, app_id=5)
        late = make_app(arrival=10.0, app_id=1)
        tie = make_app(arrival=0.0, app_id=6)
        assert early.age_key < late.age_key
        assert early.age_key < tie.age_key


class TestProgressAccounting:
    def test_completion_requires_all_items(self):
        app = make_app(batch=2)
        assert not app.is_complete
        for run in app.tasks.values():
            run.items_done = 2
        assert app.is_complete

    def test_items_remaining_and_work(self):
        app = make_app(batch=2)  # chain 10, 20
        assert app.items_remaining() == 4
        assert app.remaining_work_ms() == 2 * 10 + 2 * 20
        first = app.tasks[app.graph.topological_order[0]]
        first.items_done = 2
        assert app.items_remaining() == 2
        assert app.remaining_work_ms() == 40.0

    def test_slots_used_counts_configuring_and_configured(self):
        app = make_app()
        runs = list(app.tasks.values())
        runs[0].state = TaskRunState.CONFIGURING
        runs[1].state = TaskRunState.CONFIGURED
        assert app.slots_used == 2

    def test_over_consumption(self):
        app = make_app()
        app.slots_allocated = 1
        for run in app.tasks.values():
            run.state = TaskRunState.CONFIGURED
        assert app.over_consumption == 1

    def test_max_useful_slots_bounded_by_concurrency(self):
        # A batch-1 chain can only keep one slot busy at a time.
        app = make_app(batch=1)
        assert app.max_useful_slots() == 1

    def test_max_useful_slots_shrinks_as_tasks_finish(self):
        app = make_app(batch=3)  # chain of 2: min(2, 3 x 1) = 2
        assert app.max_useful_slots() == 2
        first = app.tasks[app.graph.topological_order[0]]
        first.items_done = 3
        assert app.max_useful_slots() == 1


class TestReadiness:
    def test_pipelined_item_ready_follows_predecessor_items(self):
        app = make_app(batch=3)
        t0, t1 = app.graph.topological_order
        app.tasks[t0].state = TaskRunState.CONFIGURED
        app.tasks[t1].state = TaskRunState.CONFIGURED
        assert app.item_ready(t0, pipelined=True)
        assert not app.item_ready(t1, pipelined=True)
        app.tasks[t0].items_done = 1
        assert app.item_ready(t1, pipelined=True)

    def test_bulk_item_ready_requires_full_predecessor_batch(self):
        app = make_app(batch=3)
        t0, t1 = app.graph.topological_order
        app.tasks[t1].state = TaskRunState.CONFIGURED
        app.tasks[t0].items_done = 2
        assert not app.item_ready(t1, pipelined=False)
        app.tasks[t0].items_done = 3
        assert app.item_ready(t1, pipelined=False)

    def test_item_ready_false_when_unconfigured_or_done(self):
        app = make_app(batch=1)
        t0 = app.graph.topological_order[0]
        assert not app.item_ready(t0, pipelined=True)
        app.tasks[t0].state = TaskRunState.CONFIGURED
        app.tasks[t0].items_done = 1
        assert not app.item_ready(t0, pipelined=True)

    def test_configurable_tasks_prefetch_vs_bulk(self):
        app = make_app(batch=2)
        t0, t1 = app.graph.topological_order
        assert app.configurable_tasks(prefetch=False) == [t0]
        assert app.configurable_tasks(prefetch=True) == [t0]
        app.tasks[t0].state = TaskRunState.CONFIGURING
        assert app.configurable_tasks(prefetch=False) == []
        assert app.configurable_tasks(prefetch=True) == [t1]

    def test_diamond_parallel_branches_both_configurable(self):
        graph = diamond_graph("d", [1.0, 1.0, 1.0, 1.0])
        app = make_app(graph=graph, batch=1)
        source = graph.topological_order[0]
        app.tasks[source].items_done = 1
        app.tasks[source].state = TaskRunState.DONE
        ready = app.configurable_tasks(prefetch=False)
        assert set(ready) == {f"d_left", f"d_right"}


class TestPreemptionState:
    def test_detach_preserves_progress(self):
        app = make_app(batch=3)
        t0 = app.graph.topological_order[0]
        run = app.tasks[t0]
        run.state = TaskRunState.CONFIGURED
        run.slot_index = 4
        run.items_done = 2
        run.detach()
        assert run.state == TaskRunState.PENDING
        assert run.slot_index is None
        assert run.items_done == 2
        assert run.preemption_count == 1

    def test_detach_requires_configured(self):
        app = make_app()
        run = app.tasks[app.graph.topological_order[0]]
        with pytest.raises(SchedulerError, match="preempted"):
            run.detach()
