"""Tests for result records (repro.hypervisor.results)."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.hypervisor.results import AppResult, single_slot_latency_ms
from repro.taskgraph.builders import chain_graph, diamond_graph
from tests.test_application_state import make_app


def make_result(**overrides):
    defaults = dict(
        app_id=0, name="c", batch_size=2, priority=3,
        arrival_ms=100.0, first_start_ms=180.0, retire_ms=500.0,
        run_busy_ms=120.0, reconfig_busy_ms=160.0, reconfig_count=2,
        preemption_count=0, single_slot_latency_ms=220.0,
    )
    defaults.update(overrides)
    return AppResult(**defaults)


class TestSingleSlotLatency:
    def test_chain_formula(self):
        graph = chain_graph("c", [10.0, 20.0])
        # 2 tasks: 2 x (80 + 3 x latency)
        assert single_slot_latency_ms(graph, 3, 80.0) == (
            80 + 30 + 80 + 60
        )

    def test_diamond_serializes_on_one_slot(self):
        graph = diamond_graph("d", [10.0, 10.0, 10.0, 10.0])
        assert single_slot_latency_ms(graph, 1, 80.0) == 4 * 90.0

    def test_rejects_bad_batch(self):
        with pytest.raises(ExperimentError, match="batch"):
            single_slot_latency_ms(chain_graph("c", [1.0]), 0, 80.0)


class TestDerivedMetrics:
    def test_response_wait_execution(self):
        result = make_result()
        assert result.response_ms == 400.0
        assert result.wait_ms == 80.0
        assert result.execution_ms == 320.0

    def test_throughput(self):
        result = make_result()
        assert result.throughput_items_per_s == pytest.approx(2 / 0.4)

    def test_deadline_violation(self):
        result = make_result()  # response 400, single-slot 220
        assert result.violates_deadline(1.0)
        assert not result.violates_deadline(2.0)

    def test_deadline_rejects_bad_factor(self):
        with pytest.raises(ExperimentError, match="scaling"):
            make_result().violates_deadline(0.0)


class TestFromApp:
    def test_unretired_app_rejected(self):
        app = make_app()
        with pytest.raises(ExperimentError, match="not retired"):
            AppResult.from_app(app, 80.0)

    def test_retired_app_summarized(self):
        app = make_app(batch=2)  # chain 10, 20
        app.first_item_start_ms = 80.0
        app.retire_ms = 300.0
        for run in app.tasks.values():
            run.items_done = 2
            run.configure_count = 1
        app.reconfig_busy_ms = 160.0
        result = AppResult.from_app(app, 80.0)
        assert result.response_ms == 300.0
        assert result.run_busy_ms == 2 * 10 + 2 * 20
        assert result.reconfig_count == 2
        assert result.single_slot_latency_ms == (80 + 20) + (80 + 40)
