"""Tests for the paper-comparison report (repro.experiments.report)."""

from __future__ import annotations

import pytest

from repro.experiments import report
from repro.experiments.runner import ExperimentSettings, RunCache


@pytest.fixture(scope="module")
def findings():
    # Small but statistically sufficient scale; one cache for everything.
    settings = ExperimentSettings(num_sequences=2, num_events=12)
    return report.generate_findings(RunCache(), settings)


class TestFindings:
    def test_covers_every_table_and_figure(self, findings):
        experiments = {f.experiment for f in findings}
        for expected in ("Table 1", "Table 2", "Table 3", "Fig 5", "Fig 6",
                         "Fig 7", "Fig 8", "Fig 9", "Fig 10", "Fig 11"):
            assert expected in experiments

    def test_verdicts_are_valid(self, findings):
        assert all(
            f.verdict in ("HELD", "PARTIAL", "DIVERGED") for f in findings
        )

    def test_static_claims_held(self, findings):
        static = [
            f for f in findings if f.experiment in ("Table 1", "Table 2")
        ]
        assert all(f.verdict == "HELD" for f in static)

    def test_majority_of_claims_held(self, findings):
        held = sum(1 for f in findings if f.verdict == "HELD")
        assert held >= 0.75 * len(findings)

    def test_markdown_rendering(self, findings):
        text = report.format_findings(findings)
        assert text.startswith("| Experiment |")
        assert "claims HELD" in text
        assert len(text.splitlines()) >= len(findings) + 3
