"""Tests for task-graph builders (repro.taskgraph.builders)."""

from __future__ import annotations

import pytest

from repro.errors import TaskGraphError
from repro.taskgraph.builders import (
    chain_graph,
    diamond_graph,
    layered_graph,
    parallel_chains_graph,
    single_task_graph,
)


class TestSingleTask:
    def test_shape(self):
        graph = single_task_graph("s", 5.0)
        assert graph.num_tasks == 1
        assert graph.num_edges == 0


class TestChain:
    def test_shape_and_latencies(self):
        graph = chain_graph("c", [1.0, 2.0, 3.0])
        assert graph.num_tasks == 3
        assert graph.num_edges == 2
        assert graph.total_latency_ms() == 6.0
        assert graph.critical_path_ms() == 6.0
        assert graph.max_width() == 1

    def test_stage_increments(self):
        graph = chain_graph("c", [1.0, 2.0])
        stages = [graph.task(t).stage for t in graph.topological_order]
        assert stages == [0, 1]

    def test_empty_rejected(self):
        with pytest.raises(TaskGraphError):
            chain_graph("c", [])


class TestDiamond:
    def test_shape(self):
        graph = diamond_graph("d", [1.0, 2.0, 3.0, 4.0])
        assert graph.num_tasks == 4
        assert graph.num_edges == 4
        assert graph.max_width() == 2
        assert graph.depth() == 3

    def test_wrong_arity_rejected(self):
        with pytest.raises(TaskGraphError, match="4 latencies"):
            diamond_graph("d", [1.0, 2.0])


class TestLayered:
    def test_dense_edges(self):
        graph = layered_graph("l", [2, 3, 1], [1.0, 2.0, 3.0])
        assert graph.num_tasks == 6
        assert graph.num_edges == 2 * 3 + 3 * 1

    def test_same_layer_same_stage_and_latency(self):
        graph = layered_graph("l", [1, 3], [1.0, 7.0])
        layer1 = [t for t in graph.topological_order
                  if graph.task(t).stage == 1]
        assert len(layer1) == 3
        assert all(graph.task(t).latency_ms == 7.0 for t in layer1)

    def test_width_matches_largest_layer(self):
        graph = layered_graph("l", [1, 4, 2], [1.0, 1.0, 1.0])
        assert graph.max_width() == 4
        assert graph.depth() == 3

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(TaskGraphError, match="equal length"):
            layered_graph("l", [1, 2], [1.0])

    def test_zero_width_rejected(self):
        with pytest.raises(TaskGraphError, match=">= 1"):
            layered_graph("l", [1, 0], [1.0, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(TaskGraphError, match="at least one layer"):
            layered_graph("l", [], [])


class TestParallelChains:
    def test_shape(self):
        graph = parallel_chains_graph("p", 3, [1.0, 2.0])
        # src + 3 chains x 2 + sink
        assert graph.num_tasks == 8
        # src->chain heads (3) + intra-chain (3) + chain tails->sink (3)
        assert graph.num_edges == 9
        assert graph.max_width() == 3

    def test_single_chain(self):
        graph = parallel_chains_graph("p", 1, [1.0])
        assert graph.num_tasks == 3
        assert graph.depth() == 3

    def test_invalid_args_rejected(self):
        with pytest.raises(TaskGraphError):
            parallel_chains_graph("p", 0, [1.0])
        with pytest.raises(TaskGraphError):
            parallel_chains_graph("p", 2, [])
