"""Tests for the experiment registry (repro.experiments.registry)."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.registry import (
    Experiment,
    ExperimentLike,
    ExperimentResult,
    all_experiments,
    experiment_names,
    get_experiment,
    run_experiment,
)
from repro.experiments.runner import ExperimentSettings, RunCache

TINY = ExperimentSettings(num_sequences=1, num_events=5)

#: Experiments cheap enough to execute inside the uniform-dispatch test.
CHEAP = ("fig2", "fig4", "table1", "table2")


class TestRegistryContents:
    def test_every_cli_experiment_is_registered(self):
        names = experiment_names()
        assert len(names) == 29
        for expected in ("fig2", "fig5", "fig11", "table1", "table3",
                         "overhead", "report", "ext-faults", "ext-seeds",
                         "ext-service", "ext-cluster", "ext-autotune"):
            assert expected in names

    def test_all_experiments_sorted_and_typed(self):
        experiments = all_experiments()
        assert [e.name for e in experiments] == sorted(experiment_names())
        for experiment in experiments:
            assert isinstance(experiment, Experiment)
            assert isinstance(experiment, ExperimentLike)

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(ExperimentError, match="fig2"):
            get_experiment("fig99")

    def test_titles_come_from_module_docstrings(self):
        assert "Figure 4" in get_experiment("fig4").title
        assert "Table 2" in get_experiment("table2").title


class TestUniformInvocation:
    @pytest.mark.parametrize("name", CHEAP)
    def test_run_returns_uniform_envelope(self, name):
        result = run_experiment(name, TINY, cache=RunCache())
        assert isinstance(result, ExperimentResult)
        assert result.name == name
        assert isinstance(result.text, str) and result.text
        assert result.value is not None
        assert result.title == get_experiment(name).title

    def test_text_matches_module_formatter(self):
        experiment = get_experiment("table2")
        result = experiment.run(TINY)
        assert result.text == experiment.module().format_result(result.value)

    def test_run_defaults_settings_and_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEQUENCES", "1")
        monkeypatch.setenv("REPRO_EVENTS", "4")
        result = run_experiment("fig2")
        assert result.name == "fig2"

    def test_simulation_experiment_through_registry(self):
        result = run_experiment("fig5", TINY, cache=RunCache(), jobs=1)
        assert "nimblock" in result.text

    def test_every_module_accepts_the_uniform_signature(self):
        """run(settings, cache, *, jobs, mode) must bind everywhere."""
        import inspect

        for experiment in all_experiments():
            signature = inspect.signature(experiment.module().run)
            signature.bind(TINY, RunCache(), jobs=None, mode="metrics")


class TestShimRetired:
    def test_swapped_positional_order_now_fails_loudly(self):
        """The PR-3 ``uniform_args`` swap shim is gone: passing the
        cache first is a plain error, not a silently-reordered call."""
        from repro.experiments import fig5_response

        with pytest.raises((TypeError, AttributeError)):
            fig5_response.run(RunCache(), TINY)

    def test_uniform_args_is_gone(self):
        import repro
        import repro.experiments
        import repro.experiments.runner as runner

        assert not hasattr(runner, "uniform_args")
        assert "uniform_args" not in repro.experiments.__all__
        with pytest.raises(AttributeError):
            repro.uniform_args

    def test_unknown_mode_rejected(self):
        from repro.experiments import fig5_response

        with pytest.raises(ExperimentError, match="unknown run mode"):
            fig5_response.run(TINY, jobs=1, mode="fast")


class TestPublicApi:
    def test_top_level_exports(self):
        import repro

        assert repro.run_experiment is run_experiment
        assert callable(repro.simulate)
        assert callable(repro.build_spans)
        assert repro.__version__

    def test_simulate_facade_round_trip(self):
        import repro

        run = repro.simulate(
            "nimblock", scenario="stress", seed=1, num_events=5,
            observe=True,
        )
        assert run.results
        assert len(run.spans()) > 0
        metrics = run.metrics()
        assert metrics["counters"]["nimblock_apps_retired_total"]["value"] \
            == len(run.results)

    def test_simulate_unobserved_has_no_metrics(self):
        import repro

        run = repro.simulate("fcfs", scenario="standard", seed=2,
                             num_events=4)
        assert run.metrics() is None
        assert len(run.trace) > 0

    def test_simulate_unknown_scenario_raises(self):
        import repro

        with pytest.raises(ExperimentError, match="stress"):
            repro.simulate(scenario="nope", num_events=3)
