"""Tests for the experiment registry (repro.experiments.registry)."""

from __future__ import annotations

import warnings

import pytest

from repro.errors import ExperimentError
from repro.experiments.registry import (
    Experiment,
    ExperimentLike,
    ExperimentResult,
    all_experiments,
    experiment_names,
    get_experiment,
    run_experiment,
)
from repro.experiments.runner import (
    ExperimentSettings,
    RunCache,
    uniform_args,
)

TINY = ExperimentSettings(num_sequences=1, num_events=5)

#: Experiments cheap enough to execute inside the uniform-dispatch test.
CHEAP = ("fig2", "fig4", "table1", "table2")


class TestRegistryContents:
    def test_every_cli_experiment_is_registered(self):
        names = experiment_names()
        assert len(names) == 28
        for expected in ("fig2", "fig5", "fig11", "table1", "table3",
                         "overhead", "report", "ext-faults", "ext-seeds",
                         "ext-service", "ext-cluster"):
            assert expected in names

    def test_all_experiments_sorted_and_typed(self):
        experiments = all_experiments()
        assert [e.name for e in experiments] == sorted(experiment_names())
        for experiment in experiments:
            assert isinstance(experiment, Experiment)
            assert isinstance(experiment, ExperimentLike)

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(ExperimentError, match="fig2"):
            get_experiment("fig99")

    def test_titles_come_from_module_docstrings(self):
        assert "Figure 4" in get_experiment("fig4").title
        assert "Table 2" in get_experiment("table2").title


class TestUniformInvocation:
    @pytest.mark.parametrize("name", CHEAP)
    def test_run_returns_uniform_envelope(self, name):
        result = run_experiment(name, TINY, cache=RunCache())
        assert isinstance(result, ExperimentResult)
        assert result.name == name
        assert isinstance(result.text, str) and result.text
        assert result.value is not None
        assert result.title == get_experiment(name).title

    def test_text_matches_module_formatter(self):
        experiment = get_experiment("table2")
        result = experiment.run(TINY)
        assert result.text == experiment.module().format_result(result.value)

    def test_run_defaults_settings_and_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEQUENCES", "1")
        monkeypatch.setenv("REPRO_EVENTS", "4")
        result = run_experiment("fig2")
        assert result.name == "fig2"

    def test_simulation_experiment_through_registry(self):
        result = run_experiment("fig5", TINY, cache=RunCache(), jobs=1)
        assert "nimblock" in result.text

    def test_every_module_accepts_the_uniform_signature(self):
        """run(settings, cache, *, jobs) must bind on every module."""
        import inspect

        for experiment in all_experiments():
            signature = inspect.signature(experiment.module().run)
            signature.bind(TINY, RunCache(), jobs=None)


class TestLegacyShim:
    def test_legacy_positional_order_swaps_and_warns(self):
        from repro.experiments import fig5_response

        cache = RunCache()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = fig5_response.run(cache, TINY)
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        assert result.reductions

    def test_uniform_args_passthrough_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            settings, cache = uniform_args(TINY, None)
        assert settings is TINY
        assert cache is None

    def test_uniform_args_swaps_both_positions(self):
        cache_in = RunCache()
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            settings, cache = uniform_args(cache_in, TINY)
        assert settings is TINY
        assert cache is cache_in


class TestPublicApi:
    def test_top_level_exports(self):
        import repro

        assert repro.run_experiment is run_experiment
        assert callable(repro.simulate)
        assert callable(repro.build_spans)
        assert repro.__version__

    def test_simulate_facade_round_trip(self):
        import repro

        run = repro.simulate(
            "nimblock", scenario="stress", seed=1, num_events=5,
            observe=True,
        )
        assert run.results
        assert len(run.spans()) > 0
        metrics = run.metrics()
        assert metrics["counters"]["nimblock_apps_retired_total"]["value"] \
            == len(run.results)

    def test_simulate_unobserved_has_no_metrics(self):
        import repro

        run = repro.simulate("fcfs", scenario="standard", seed=2,
                             num_events=4)
        assert run.metrics() is None
        assert len(run.trace) > 0

    def test_simulate_unknown_scenario_raises(self):
        import repro

        with pytest.raises(ExperimentError, match="stress"):
            repro.simulate(scenario="nope", num_events=3)
