"""Byte-identical equivalence pins for the optimized simulation core.

The performance work (tuple event heap, columnar trace, availability
caches, graph-attached memos) must be *pure* optimization: every
scheduler has to produce exactly the trace, responses and derived
metrics it produced before. These tests pin a sha256 over the full
canonical dump of a fixed workload for every registry scheduler — plus
three fault-injection (chaos) runs, which exercise event cancellation,
preemption rollback and the availability-cache invalidation hooks.

The hashes were recorded against the pre-optimization implementation;
any ordering, timing or rounding drift in the core shows up here as a
hash mismatch long before it would surface in an experiment figure.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.config import SystemConfig
from repro.faults.injector import FaultInjector
from repro.hypervisor.hypervisor import Hypervisor
from repro.metrics.utilization import board_utilization
from repro.schedulers.registry import make_scheduler
from repro.sim.trace_export import trace_to_dict
from repro.workload.generator import EventGenerator
from repro.workload.scenarios import chaos_scenario

#: sha256 of the canonical run dump per scheduler, recorded before the
#: performance optimization of the simulation core.
PINNED_RUNS = {
    "baseline": "c19362c0d2838fb2cbea65bd4e929a80e81fe6276ef10ccd746e0a4e605afd89",
    "fcfs": "d14c903cab34f24dcfca320dc14088e64669e8910bce26a271d580b7731c3644",
    "prema": "c50d03b64ff8ce03f8b9a003ab970749e10fc8ed6dc04bc698252ea6da44fa93",
    "rr": "ca8fa2c1eca90a3fb547f5b045a4436485bd85df4109aa4248ff7f0755dcdd76",
    "nimblock": "d0a2ca66ba425d07cb0f48881901aacc879b092411c1d9c8af2cebbab06b3e12",
    "nimblock_no_pipe": "86729931813d6b78f70eb6a9a9bd3d7b8092ebb46f19104ed4031c9aa3106d80",
    "nimblock_no_preempt": "132821bac64351b56dba0c612e417a0471545c904250e1e5623e1be91e86fa72",
    "edf": "1a1333f92faacec98f7cb766ed44ce3c4d5fb305eef7670084b5bf0dec3d21b2",
    "dml_static": "e11dc9bd034ed819c2adef8b74d609d41835f0beb40e264dcbf5ae168365a893",
}

#: Same idea under full-rate fault injection (mixed chaos scenario).
PINNED_CHAOS_RUNS = {
    "nimblock": "4a965efc2721c205ce79dad32be4f3922507233319dd5fcc89588f62395b9c98",
    "rr": "2c92a5ed0bed7ed87b7627eef228bc55a91bac2191fe851b55aa2d76e24240a4",
    "prema": "6c0088abd9686ec2b7725c8545042d777df2ebc37ab27111d4c73b146d907671",
}


def pinned_sequence():
    """The fixed workload every pin hashes: seed 99, four benchmarks."""
    return EventGenerator(
        99, benchmarks=("lenet", "imgc", "3dr", "of")
    ).sequence(
        num_events=5,
        delay_range_ms=(200.0, 200.0),
        batch_range=(2, 6),
        label="golden",
    )


def run_digest(name: str) -> str:
    hv = Hypervisor(make_scheduler(name))
    for request in pinned_sequence().to_requests():
        hv.submit(request)
    hv.run()
    util = board_utilization(hv.trace, hv.config.num_slots)
    blob = json.dumps(
        {
            "trace": trace_to_dict(hv.trace, label=name),
            "responses": [round(r.response_ms, 6) for r in hv.results()],
            "util": [
                round(util.compute_fraction, 9),
                round(util.reconfig_fraction, 9),
            ],
            "reconfig_busy": round(hv.trace.reconfig_busy_ms(), 6),
            "run_busy": round(hv.trace.run_busy_ms(), 6),
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def chaos_digest(name: str) -> str:
    fault_config = chaos_scenario("mixed").fault_config(
        fault_rate=1.0, seed=1234
    )
    hv = Hypervisor(
        make_scheduler(name),
        config=SystemConfig(),
        faults=FaultInjector(fault_config),
    )
    for request in pinned_sequence().to_requests():
        hv.submit(request)
    hv.run()
    blob = json.dumps(
        {
            "trace": trace_to_dict(hv.trace, label=name),
            "responses": [round(r.response_ms, 6) for r in hv.results()],
            "faults": hv.fault_stats.total_faults,
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


class TestPinnedEquivalence:
    @pytest.mark.parametrize("name", sorted(PINNED_RUNS))
    def test_scheduler_matches_pre_optimization_pin(self, name):
        assert run_digest(name) == PINNED_RUNS[name], (
            f"scheduler {name!r} diverged from its pre-optimization trace"
        )

    @pytest.mark.parametrize("name", sorted(PINNED_CHAOS_RUNS))
    def test_chaos_run_matches_pre_optimization_pin(self, name):
        assert chaos_digest(name) == PINNED_CHAOS_RUNS[name], (
            f"chaos run {name!r} diverged from its pre-optimization trace"
        )

    def test_repeat_run_is_bit_stable(self):
        # Same process, fresh hypervisors: the digest never drifts (the
        # graph-attached memo caches warmed by the first run must not
        # change the second run's trace).
        assert run_digest("nimblock") == run_digest("nimblock")
