"""Tests for multi-FPGA scale-out (repro.hypervisor.cluster)."""

from __future__ import annotations

import pytest

from repro.errors import SchedulerError, WorkloadError
from repro.hypervisor.cluster import FPGACluster
from repro.taskgraph.builders import chain_graph
from tests.conftest import request, small_config


def light_request(index, latency=100.0, batch=2):
    graph = chain_graph(f"app{index}", [latency])
    return request(graph, batch_size=batch, arrival_ms=float(index * 10))


class TestDispatch:
    def test_round_robin_rotates(self):
        cluster = FPGACluster(3, config=small_config(), dispatch="round_robin")
        devices = [cluster.submit(light_request(i))[0] for i in range(6)]
        assert devices == [0, 1, 2, 0, 1, 2]

    def test_least_loaded_balances_by_estimate(self):
        cluster = FPGACluster(2, config=small_config(),
                              dispatch="least_loaded")
        heavy = chain_graph("heavy", [10_000.0])
        light = chain_graph("light", [10.0])
        first, _ = cluster.submit(request(heavy, batch_size=5))
        second, _ = cluster.submit(request(light, arrival_ms=1.0))
        third, _ = cluster.submit(request(light, arrival_ms=2.0))
        assert first != second
        # The heavy device stays loaded: both light apps avoid it.
        assert second == third

    def test_unknown_dispatch_rejected(self):
        with pytest.raises(SchedulerError, match="dispatch"):
            FPGACluster(2, dispatch="random")

    def test_zero_devices_rejected(self):
        with pytest.raises(WorkloadError, match="num_devices"):
            FPGACluster(0)


class TestExecution:
    def test_all_applications_retire_across_fleet(self):
        cluster = FPGACluster(2, config=small_config())
        for i in range(5):
            cluster.submit(light_request(i))
        cluster.run()
        results = cluster.results()
        assert len(results) == 5
        assert sum(cluster.device_utilization()) == 5

    def test_submit_after_run_rejected(self):
        cluster = FPGACluster(1, config=small_config())
        cluster.submit(light_request(0))
        cluster.run()
        with pytest.raises(SchedulerError, match="already ran"):
            cluster.submit(light_request(1))

    def test_mean_response_requires_submissions(self):
        cluster = FPGACluster(1, config=small_config())
        cluster.run()
        with pytest.raises(SchedulerError, match="no applications"):
            cluster.mean_response_ms()

    def test_more_devices_never_hurt_much(self):
        def fleet_mean(devices):
            cluster = FPGACluster(devices, config=small_config())
            for i in range(8):
                cluster.submit(light_request(i, latency=500.0, batch=4))
            cluster.run()
            return cluster.mean_response_ms()

        one, four = fleet_mean(1), fleet_mean(4)
        assert four < one

    def test_results_annotated_with_device(self):
        cluster = FPGACluster(2, config=small_config(),
                              dispatch="round_robin")
        for i in range(4):
            cluster.submit(light_request(i))
        cluster.run()
        devices = {r.device for r in cluster.results()}
        assert devices == {0, 1}


class TestHeterogeneousFleet:
    def test_device_configs_override_count(self):
        cluster = FPGACluster(
            1,
            device_configs=[small_config(num_slots=4),
                            small_config(num_slots=2)],
        )
        assert cluster.num_devices == 2
        assert cluster.hypervisors[0].config.num_slots == 4
        assert cluster.hypervisors[1].config.num_slots == 2

    def test_empty_device_configs_rejected(self):
        import pytest as _pytest

        with _pytest.raises(WorkloadError, match="non-empty"):
            FPGACluster(1, device_configs=[])

    def test_capability_normalized_dispatch(self):
        # A big board (8 slots) and a tiny one (1 slot): after the big
        # board takes one app, normalized load still favors it over the
        # tiny board for similarly sized work.
        big = small_config(num_slots=8)
        tiny = small_config(num_slots=1)
        cluster = FPGACluster(1, device_configs=[big, tiny],
                              dispatch="least_loaded")
        first, _ = cluster.submit(light_request(0, latency=100.0, batch=2))
        second, _ = cluster.submit(light_request(1, latency=100.0, batch=2))
        third, _ = cluster.submit(light_request(2, latency=100.0, batch=2))
        assert first == 0
        # Normalized: big load/8 stays below tiny 0/1 only until the tiny
        # board is genuinely competitive; at least one early app must
        # still land on the big board after the first.
        assert second == 0 or third == 0

    def test_heterogeneous_fleet_completes(self):
        cluster = FPGACluster(
            1,
            device_configs=[small_config(num_slots=4),
                            small_config(num_slots=2)],
        )
        for i in range(6):
            cluster.submit(light_request(i, latency=200.0, batch=3))
        cluster.run()
        assert len(cluster.results()) == 6
