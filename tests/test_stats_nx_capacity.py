"""Tests for bootstrap CIs, the networkx bridge and capacity planning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExperimentError, TaskGraphError
from repro.metrics.stats import bootstrap_ci, reduction_ci
from repro.taskgraph.builders import chain_graph, diamond_graph, layered_graph
from repro.taskgraph.nx_bridge import (
    cross_check_metrics,
    from_networkx,
    to_networkx,
)


class TestBootstrap:
    def test_point_estimate_inside_interval(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0] * 4
        point, low, high = bootstrap_ci(values, seed=1)
        assert low <= point <= high
        assert point == pytest.approx(3.0)

    def test_tighter_with_more_data(self):
        rng = np.random.default_rng(7)
        small = list(rng.normal(10, 2, size=10))
        big = list(rng.normal(10, 2, size=1000))
        _, lo_s, hi_s = bootstrap_ci(small, seed=2)
        _, lo_b, hi_b = bootstrap_ci(big, seed=2)
        assert (hi_b - lo_b) < (hi_s - lo_s)

    def test_seeded_determinism(self):
        values = [1.0, 5.0, 9.0, 2.0]
        assert bootstrap_ci(values, seed=3) == bootstrap_ci(values, seed=3)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            bootstrap_ci([])
        with pytest.raises(ExperimentError):
            bootstrap_ci([1.0], confidence=1.5)
        with pytest.raises(ExperimentError):
            bootstrap_ci([1.0], resamples=2)

    def test_reduction_ci_pairs(self):
        base = [100.0, 200.0, 300.0, 400.0]
        other = [50.0, 100.0, 150.0, 200.0]
        point, low, high = reduction_ci(base, other, seed=4)
        assert point == pytest.approx(2.0)
        # Perfectly correlated pairs -> the ratio is exactly 2 always.
        assert low == pytest.approx(2.0)
        assert high == pytest.approx(2.0)

    def test_reduction_ci_validation(self):
        with pytest.raises(ExperimentError):
            reduction_ci([1.0], [1.0, 2.0])
        with pytest.raises(ExperimentError):
            reduction_ci([], [])


class TestNetworkxBridge:
    def test_round_trip(self):
        graph = diamond_graph("d", [10.0, 20.0, 30.0, 40.0])
        rebuilt = from_networkx(to_networkx(graph), name="d")
        assert rebuilt.num_tasks == graph.num_tasks
        assert set(rebuilt.edges) == set(graph.edges)
        for task_id in graph.topological_order:
            assert rebuilt.task(task_id).latency_ms == graph.task(
                task_id
            ).latency_ms

    def test_missing_latency_rejected(self):
        import networkx as nx

        digraph = nx.DiGraph()
        digraph.add_node("a")
        with pytest.raises(TaskGraphError, match="latency_ms"):
            from_networkx(digraph)

    def test_cycle_rejected(self):
        import networkx as nx

        digraph = nx.DiGraph()
        digraph.add_edge("a", "b")
        digraph.add_edge("b", "a")
        for node in digraph:
            digraph.nodes[node]["latency_ms"] = 1.0
        with pytest.raises(TaskGraphError, match="cycle"):
            from_networkx(digraph)

    def test_empty_rejected(self):
        import networkx as nx

        with pytest.raises(TaskGraphError, match="empty"):
            from_networkx(nx.DiGraph())

    @pytest.mark.parametrize("graph", [
        chain_graph("c", [5.0, 7.0, 11.0]),
        diamond_graph("d", [1.0, 2.0, 3.0, 4.0]),
        layered_graph("l", [1, 3, 2], [10.0, 20.0, 5.0]),
    ], ids=["chain", "diamond", "layered"])
    def test_cross_check_agrees_with_our_metrics(self, graph):
        check = cross_check_metrics(graph)
        assert check["num_nodes"] == graph.num_tasks
        assert check["num_edges"] == graph.num_edges
        assert check["depth"] == graph.depth()
        assert check["critical_path_ms"] == pytest.approx(
            graph.critical_path_ms()
        )


class TestCapacityPlanning:
    def test_sweep_monotone_and_knee(self):
        from repro.experiments import ext_capacity
        from repro.experiments.runner import ExperimentSettings

        result = ext_capacity.run(
            settings=ExperimentSettings(num_sequences=1, num_events=8),
            slot_counts=(2, 4, 8),
        )
        # More slots never hurt much.
        assert result.response(8) <= result.response(2) * 1.05
        knee = result.knee()
        assert knee in (2, 4, 8)
        text = ext_capacity.format_result(result)
        assert "capacity planning" in text
        assert "knee" in text
