"""Tests for interconnect models and their hypervisor integration."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.hypervisor.hypervisor import Hypervisor
from repro.overlay.interconnect import (
    NoC,
    PSRouted,
    ZeroCost,
    make_interconnect,
)
from repro.schedulers.registry import make_scheduler
from repro.taskgraph.builders import chain_graph
from tests.conftest import request, small_config


class TestModels:
    def test_zero_cost_is_always_free(self):
        model = ZeroCost()
        assert model.transfer_ms(10**9, same_slot=False) == 0.0
        assert model.transfer_ms(0, same_slot=True) == 0.0

    def test_ps_routed_charges_two_copies_plus_overhead(self):
        model = PSRouted(bandwidth_bytes_per_ms=1000.0,
                         software_overhead_ms=1.0)
        assert model.transfer_ms(500, same_slot=False) == 1.0 + 1.0
        assert model.transfer_ms(500, same_slot=True) == 1.0

    def test_noc_single_traversal(self):
        model = NoC(bandwidth_bytes_per_ms=1000.0, router_latency_ms=0.5,
                    hops=2)
        assert model.transfer_ms(1000, same_slot=False) == 1.0 + 1.0
        assert model.transfer_ms(1000, same_slot=True) == 0.0

    def test_noc_cheaper_than_ps_for_any_payload(self):
        ps, noc = PSRouted(), NoC()
        for payload in (1024, 256 * 1024, 8 * 1024**2):
            assert noc.transfer_ms(payload, False) < ps.transfer_ms(
                payload, False
            )

    def test_factory(self):
        assert isinstance(make_interconnect("noc"), NoC)
        assert isinstance(make_interconnect("ps_routed"), PSRouted)
        assert isinstance(make_interconnect("zero_cost"), ZeroCost)
        with pytest.raises(ReproError, match="unknown interconnect"):
            make_interconnect("wormhole")

    def test_parameter_validation(self):
        with pytest.raises(ReproError):
            PSRouted(bandwidth_bytes_per_ms=0.0)
        with pytest.raises(ReproError):
            NoC(hops=0)
        with pytest.raises(ReproError):
            PSRouted().transfer_ms(-1, False)


class TestHypervisorIntegration:
    def _run(self, interconnect, payload=1024 * 1024):
        graph = chain_graph("c", [100.0, 100.0])
        hypervisor = Hypervisor(
            make_scheduler("baseline"),
            config=small_config(),
            interconnect=interconnect,
            item_buffer_bytes=payload,
        )
        hypervisor.submit(request(graph, batch_size=2))
        hypervisor.run()
        return hypervisor.results()[0]

    def test_zero_cost_matches_plain_run(self):
        assert self._run(ZeroCost()).response_ms == 480.0

    def test_ps_routed_charges_cross_slot_items(self):
        model = PSRouted(bandwidth_bytes_per_ms=1024 * 1024,
                         software_overhead_ms=1.0)
        result = self._run(model)
        # t1's two items each fetch 1 MiB from t0's slot: +2 x (1 + 2) ms.
        assert result.response_ms == 480.0 + 2 * 3.0

    def test_same_slot_transfer_free_on_noc(self):
        graph = chain_graph("c", [100.0, 100.0])
        hypervisor = Hypervisor(
            make_scheduler("baseline"),
            config=small_config(num_slots=1),
            interconnect=NoC(),
            item_buffer_bytes=1024,
        )
        hypervisor.submit(request(graph, batch_size=1))
        hypervisor.run()
        # One slot: consumer runs where the producer ran -> no charge.
        assert hypervisor.results()[0].response_ms == (80 + 100) * 2

    def test_invalid_payload_rejected(self):
        with pytest.raises(Exception):
            Hypervisor(make_scheduler("fcfs"), item_buffer_bytes=0)
