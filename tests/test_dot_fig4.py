"""Tests for DOT export and the Figure 4 experiment."""

from __future__ import annotations

from repro.apps.catalog import get_benchmark
from repro.experiments import fig4_taskgraph
from repro.taskgraph.builders import chain_graph, layered_graph
from repro.taskgraph.dot import stage_summary, to_dot


class TestDotExport:
    def test_all_nodes_and_edges_present(self):
        graph = chain_graph("c", [1.0, 2.0, 3.0])
        dot = to_dot(graph)
        assert dot.startswith('digraph "c"')
        for task_id in graph.topological_order:
            assert f'"{task_id}"' in dot
        assert dot.count("->") == graph.num_edges
        assert dot.rstrip().endswith("}")

    def test_stage_colors_differ_between_layers(self):
        graph = layered_graph("l", [1, 2], [1.0, 1.0])
        dot = to_dot(graph)
        assert "lightblue" in dot
        assert "lightgoldenrod" in dot

    def test_rankdir(self):
        graph = chain_graph("c", [1.0])
        assert "rankdir=LR" in to_dot(graph, rankdir="LR")

    def test_alexnet_dot_shape(self):
        graph = get_benchmark("alexnet").graph
        dot = to_dot(graph)
        assert dot.count("->") == 184
        assert dot.count("[label=") == 38


class TestStageSummary:
    def test_alexnet_widths(self):
        summary = stage_summary(get_benchmark("alexnet").graph)
        widths = [s["width"] for s in summary]
        assert widths == [1, 6, 6, 6, 6, 6, 4, 2, 1]

    def test_chain_is_all_width_one(self):
        summary = stage_summary(chain_graph("c", [1.0, 1.0, 1.0]))
        assert all(s["width"] == 1 for s in summary)


class TestFig4Experiment:
    def test_matches_table2(self):
        result = fig4_taskgraph.run()
        assert result.num_tasks == 38
        assert result.num_edges == 184
        text = fig4_taskgraph.format_result(result)
        assert "38 tasks, 184 edges" in text
        assert "digraph" in text

    def test_other_benchmark_selectable(self):
        result = fig4_taskgraph.run(benchmark="of")
        assert result.num_tasks == 9
