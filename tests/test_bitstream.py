"""Tests for the bitstream store (repro.overlay.bitstream)."""

from __future__ import annotations

import pytest

from repro.errors import BitstreamError
from repro.overlay.bitstream import (
    BitstreamHeader,
    BitstreamStore,
    PartialBitstream,
)


def header(task="t0", app="app", **kwargs):
    defaults = dict(
        application=app,
        task_id=task,
        latency_estimate_ms=10.0,
        batch_size=2,
        priority=3,
    )
    defaults.update(kwargs)
    return BitstreamHeader(**defaults)


class TestHeader:
    def test_carries_interface_info(self):
        h = header()
        assert h.control_interface == "axilite"
        assert h.data_interface == "axi4"

    def test_rejects_bad_latency(self):
        with pytest.raises(BitstreamError, match="latency"):
            header(latency_estimate_ms=0.0)

    def test_rejects_bad_batch(self):
        with pytest.raises(BitstreamError, match="batch"):
            header(batch_size=0)

    def test_rejects_bad_priority(self):
        with pytest.raises(BitstreamError, match="priority"):
            header(priority=0)


class TestPartialBitstream:
    def test_key_identity(self):
        stream = PartialBitstream(header(), slot=3)
        assert stream.key == ("app", "t0", 3)

    def test_rejects_negative_slot(self):
        with pytest.raises(BitstreamError, match="slot"):
            PartialBitstream(header(), slot=-1)

    def test_rejects_empty_size(self):
        with pytest.raises(BitstreamError, match="size"):
            PartialBitstream(header(), slot=0, size_bytes=0)


class TestStore:
    def test_one_bitstream_per_slot(self):
        store = BitstreamStore(num_slots=4)
        streams = store.register_task(header())
        assert len(streams) == 4
        assert store.count() == 4
        assert store.count("app") == 4
        assert store.count("other") == 0

    def test_duplicate_registration_rejected(self):
        store = BitstreamStore(num_slots=2)
        store.register_task(header())
        with pytest.raises(BitstreamError, match="already registered"):
            store.register_task(header())

    def test_register_all(self):
        store = BitstreamStore(num_slots=3)
        store.register_all([header("t0"), header("t1")])
        assert store.count() == 6

    def test_lookup_and_missing(self):
        store = BitstreamStore(num_slots=2)
        store.register_task(header())
        assert store.lookup("app", "t0", 1).slot == 1
        with pytest.raises(BitstreamError, match="out of range"):
            store.lookup("app", "t0", 5)
        with pytest.raises(BitstreamError, match="no bitstream"):
            store.lookup("app", "other_task", 0)

    def test_first_load_costs_then_cached(self):
        store = BitstreamStore(num_slots=2)
        store.register_task(header())
        _, first_cost = store.load("app", "t0", 0)
        assert first_cost > 0
        _, second_cost = store.load("app", "t0", 0)
        assert second_cost == 0.0
        assert store.loads == 2
        assert store.cache_hits == 1

    def test_rejects_zero_slots(self):
        with pytest.raises(BitstreamError, match="num_slots"):
            BitstreamStore(0)


class TestRelocatableStore:
    def test_one_bitstream_per_task(self):
        store = BitstreamStore(num_slots=8, relocatable=True)
        streams = store.register_task(header())
        assert len(streams) == 1
        assert store.count() == 1

    def test_relocated_lookup_serves_every_slot(self):
        store = BitstreamStore(num_slots=4, relocatable=True)
        store.register_task(header())
        for slot in range(4):
            assert store.lookup("app", "t0", slot).header.task_id == "t0"

    def test_storage_reduction_factor_is_slot_count(self):
        per_slot = BitstreamStore(num_slots=10)
        relocated = BitstreamStore(num_slots=10, relocatable=True)
        for h in (header("t0"), header("t1"), header("t2")):
            per_slot.register_task(
                BitstreamHeader(h.application, h.task_id,
                                h.latency_estimate_ms, h.batch_size,
                                h.priority)
            )
            relocated.register_task(h)
        assert per_slot.count() == 10 * relocated.count()
