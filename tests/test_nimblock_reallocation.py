"""White-box tests: reallocation throttling in the Nimblock policy.

The paper reallocates at scheduling intervals and candidate-pool changes
(§4.2); these tests pin that the implementation does not reallocate on
arbitrary decide() calls in between — the behaviour that prevents
preemption thrash at large batch sizes.
"""

from __future__ import annotations

from repro.core.nimblock import NimblockScheduler
from repro.hypervisor.hypervisor import Hypervisor
from repro.taskgraph.builders import chain_graph
from tests.conftest import request, small_config


def _paused_system():
    """Two pipelining apps mid-flight, policy attached, engine paused."""
    policy = NimblockScheduler()
    hv = Hypervisor(policy, config=small_config(num_slots=4))
    graph = chain_graph("c", [500.0, 500.0])
    hv.submit(request(graph, batch_size=10, arrival_ms=0.0))
    hv.submit(request(graph, batch_size=10, arrival_ms=50.0))
    hv.run(until=1200.0)
    return policy, hv


class TestReallocationThrottle:
    def test_allocations_stable_between_events(self):
        policy, hv = _paused_system()
        snapshot = {
            app.app_id: app.slots_allocated
            for app in hv.pending.in_arrival_order()
        }
        assert snapshot, "apps should still be pending at t=1200"
        # Repeated decide() calls without a notification must not move
        # the allocation.
        for _ in range(5):
            policy.decide(hv._ctx)
        after = {
            app.app_id: app.slots_allocated
            for app in hv.pending.in_arrival_order()
        }
        assert after == snapshot

    def test_tick_marks_allocation_dirty(self):
        policy, hv = _paused_system()
        assert policy._alloc_dirty is False
        policy.notify_tick(hv._ctx)
        assert policy._alloc_dirty is True
        policy.decide(hv._ctx)
        assert policy._alloc_dirty is False

    def test_candidate_pool_change_forces_reallocation(self):
        policy, hv = _paused_system()
        # Steal the second app's candidacy by inflating the first app's
        # token beyond the 9-level threshold.
        apps = hv.pending.in_arrival_order()
        apps[0].token = 50.0
        apps[1].token = 0.5
        # Direct token pokes bypass the accounting's generation counter;
        # invalidate the keyed candidate cache the way a drill would.
        policy._tokens.note_external_token_write()
        policy.decide(hv._ctx)
        # The dropped candidate holds no allocation anymore.
        assert apps[1].slots_allocated == 0
        assert apps[0].slots_allocated >= 1
