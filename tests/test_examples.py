"""Smoke tests: the fast example scripts run end to end."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "application results" in out
        assert "board activity" in out

    def test_custom_application(self):
        out = _run("custom_application.py")
        assert "goal number" in out
        assert "vision" in out

    def test_faas_serverless(self):
        out = _run("faas_serverless.py")
        assert "registered functions" in out
        assert "SLO met" in out

    def test_trace_analysis(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "trace_analysis.py"),
             str(tmp_path)],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "utilization over" in proc.stdout
        assert (tmp_path / "results.csv").exists()
        assert (tmp_path / "trace.json").exists()

    @pytest.mark.parametrize(
        "script",
        ["cloud_multitenant.py", "realtime_deadlines.py",
         "scaleout_cluster.py"],
    )
    def test_scripts_importable(self, script):
        # The heavier examples are compile-checked rather than executed to
        # keep the unit suite fast; the bench/CLI layers execute the same
        # code paths.
        source = (EXAMPLES / script).read_text(encoding="utf-8")
        compile(source, script, "exec")
