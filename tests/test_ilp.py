"""Tests for the ILP-substitute schedule analysis (repro.ilp)."""

from __future__ import annotations

import pytest

from repro.errors import SolverError
from repro.ilp.estimator import (
    best_heuristic,
    estimate_makespan_ms,
    heuristic_assignments,
)
from repro.ilp.model import (
    ScheduleProblem,
    evaluate_assignment,
    least_loaded_assignment,
    stage_major_assignment,
)
from repro.ilp.solver import BranchAndBoundSolver
from repro.taskgraph.builders import chain_graph, diamond_graph, layered_graph


def problem(graph, batch=2, slots=2, reconfig=80.0):
    return ScheduleProblem(graph, batch, slots, reconfig)


class TestProblemValidation:
    def test_rejects_bad_parameters(self):
        g = chain_graph("c", [10.0])
        with pytest.raises(SolverError):
            ScheduleProblem(g, 0, 1, 80.0)
        with pytest.raises(SolverError):
            ScheduleProblem(g, 1, 0, 80.0)
        with pytest.raises(SolverError):
            ScheduleProblem(g, 1, 1, -1.0)

    def test_lower_bound_below_any_assignment(self):
        g = diamond_graph("d", [10.0, 20.0, 30.0, 40.0])
        p = problem(g, batch=3, slots=2)
        bound = p.lower_bound_ms()
        for _, assignment in heuristic_assignments(p):
            assert evaluate_assignment(p, assignment) >= bound


class TestEvaluateAssignment:
    def test_chain2_two_slots_hand_computed(self):
        g = chain_graph("c", [100.0, 100.0])
        p = problem(g, batch=2, slots=2)
        assignment = {"c_t0": 0, "c_t1": 1}
        # cfg t0 0-80, items 80-180, 180-280; cfg t1 80-160,
        # item0 at max(160, 180) -> 280, item1 at max(280,280) -> 380.
        assert evaluate_assignment(p, assignment) == 380.0

    def test_chain2_one_slot_hand_computed(self):
        g = chain_graph("c", [100.0, 100.0])
        p = problem(g, batch=2, slots=1)
        assignment = {"c_t0": 0, "c_t1": 0}
        # t0: cfg 0-80, items to 280; t1: cfg 280-360, items to 560.
        assert evaluate_assignment(p, assignment) == 560.0

    def test_same_slot_serializes_tasks(self):
        g = chain_graph("c", [100.0, 100.0])
        p = problem(g, batch=2, slots=2)
        shared = evaluate_assignment(p, {"c_t0": 0, "c_t1": 0})
        split = evaluate_assignment(p, {"c_t0": 0, "c_t1": 1})
        assert split < shared

    def test_partial_assignment_rejected(self):
        g = chain_graph("c", [10.0, 10.0])
        p = problem(g)
        with pytest.raises(SolverError, match="misses task"):
            evaluate_assignment(p, {"c_t0": 0})

    def test_out_of_range_slot_rejected(self):
        g = chain_graph("c", [10.0])
        p = problem(g, slots=1)
        with pytest.raises(SolverError, match="invalid slot"):
            evaluate_assignment(p, {"c_t0": 3})


class TestHeuristics:
    def test_assignments_cover_all_tasks(self):
        g = layered_graph("l", [1, 3, 1], [10.0, 10.0, 10.0])
        p = problem(g, slots=3)
        for name, assignment in heuristic_assignments(p):
            assert set(assignment) == set(g.topological_order)

    def test_stage_major_spreads_siblings(self):
        g = layered_graph("l", [1, 3, 1], [10.0, 10.0, 10.0])
        p = problem(g, slots=3)
        assignment = stage_major_assignment(p)
        siblings = [t for t in g.topological_order if g.task(t).stage == 1]
        assert len({assignment[t] for t in siblings}) == 3

    def test_least_loaded_balances_work(self):
        g = chain_graph("c", [100.0, 1.0, 1.0, 1.0])
        p = problem(g, slots=2)
        assignment = least_loaded_assignment(p)
        # The heavy head task sits alone; the light tail shares a slot.
        head_slot = assignment["c_t0"]
        others = {assignment[t] for t in g.topological_order[1:]}
        assert others == {1 - head_slot} or len(others) == 1

    def test_estimate_takes_best(self):
        g = diamond_graph("d", [10.0, 50.0, 50.0, 10.0])
        p = problem(g, batch=4, slots=3)
        best = estimate_makespan_ms(p)
        assert best == min(
            evaluate_assignment(p, a) for _, a in heuristic_assignments(p)
        )
        name, value = best_heuristic(p)
        assert value == best
        assert name in ("round_robin", "least_loaded", "stage_major")


class TestExactSolver:
    @pytest.mark.parametrize("slots", [1, 2, 3])
    def test_solver_never_worse_than_estimator(self, slots):
        g = diamond_graph("d", [20.0, 40.0, 60.0, 20.0])
        p = problem(g, batch=3, slots=slots)
        result = BranchAndBoundSolver(p).solve()
        assert result.makespan_ms <= estimate_makespan_ms(p) + 1e-9
        assert result.makespan_ms >= p.lower_bound_ms() - 1e-9

    def test_solver_returns_valid_assignment(self):
        g = chain_graph("c", [30.0, 30.0, 30.0])
        p = problem(g, batch=2, slots=2)
        result = BranchAndBoundSolver(p).solve()
        assert evaluate_assignment(p, result.assignment) == pytest.approx(
            result.makespan_ms
        )

    def test_exhaustive_matches_brute_force(self):
        g = chain_graph("c", [25.0, 50.0])
        p = problem(g, batch=2, slots=2)
        import itertools

        order = g.topological_order
        brute = min(
            evaluate_assignment(p, dict(zip(order, combo)))
            for combo in itertools.product(range(2), repeat=2)
        )
        assert BranchAndBoundSolver(p).solve().makespan_ms == brute

    def test_oversized_instance_rejected(self):
        g = layered_graph("l", [5, 5, 5, 5, 5], [1.0] * 5)
        p = problem(g, slots=10)
        with pytest.raises(SolverError, match="too large"):
            BranchAndBoundSolver(p)


class TestEstimatorVsSimulation:
    """The ILP-substitute estimator must track the real simulator."""

    @pytest.mark.parametrize("name,batch,slots", [
        ("lenet", 4, 3), ("imgc", 4, 3), ("of", 2, 4), ("3dr", 6, 2),
    ])
    def test_estimate_close_to_greedy_simulation(self, name, batch, slots):
        from repro.apps.catalog import get_benchmark
        from repro.config import SystemConfig
        from repro.hypervisor.application import AppRequest
        from repro.hypervisor.hypervisor import Hypervisor
        from repro.schedulers.no_sharing import NoSharingScheduler

        class GreedyPipeline(NoSharingScheduler):
            name = "greedy_pipeline_est"
            pipelined = True

        app = get_benchmark(name)
        config = SystemConfig(
            num_slots=slots, dispatch_overhead_ms=0.0
        )
        hv = Hypervisor(GreedyPipeline(), config=config)
        hv.submit(AppRequest(app.name, app.graph, batch, 3, 0.0))
        hv.run()
        simulated = hv.results()[0].response_ms

        estimated = estimate_makespan_ms(
            ScheduleProblem(app.graph, batch, slots, config.reconfig_ms)
        )
        # The estimator evaluates a few fixed assignments; the greedy
        # simulator reacts dynamically. They must agree within 25%.
        assert estimated == pytest.approx(simulated, rel=0.25)
