"""Tests for batch-preemption — Algorithm 2 (repro.core.preemption).

Unit tests drive ``select_preemption_slot`` through a duck-typed context
with fabricated slots; integration tests verify the end-to-end rollback
behaviour inside the hypervisor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.preemption import select_preemption_slot
from repro.hypervisor.application import TaskRunState
from repro.sim.trace import TraceKind
from repro.taskgraph.builders import chain_graph
from tests.conftest import request, run_named, small_config
from tests.test_application_state import make_app


@dataclass
class _FakeSlot:
    index: int


class _FakeDevice:
    def __init__(self, n):
        self.slots = [_FakeSlot(i) for i in range(n)]


class FakeCtx:
    """Duck-typed SchedulerContext exposing only what Algorithm 2 needs."""

    def __init__(self, num_slots: int):
        self.device = _FakeDevice(num_slots)
        self._occupants: Dict[int, tuple] = {}
        self._busy: Dict[int, bool] = {}

    def occupy(self, slot: int, app, task_id: str, busy: bool) -> None:
        run = app.tasks[task_id]
        run.state = TaskRunState.CONFIGURED
        run.slot_index = slot
        self._occupants[slot] = (app, run)
        self._busy[slot] = busy

    def slot_occupant(self, index: int) -> Optional[tuple]:
        return self._occupants.get(index)

    def slot_waiting(self, index: int) -> bool:
        return index in self._occupants and not self._busy[index]


def chain_app(num_tasks=3, allocated=1, app_id=0):
    graph = chain_graph(f"a{app_id}", [10.0] * num_tasks)
    app = make_app(graph=graph, batch=5, app_id=app_id)
    app.slots_allocated = allocated
    return app


class TestVictimSelection:
    def test_no_occupants_no_victim(self):
        assert select_preemption_slot(FakeCtx(4)) is None

    def test_no_over_consumer_no_victim(self):
        ctx = FakeCtx(4)
        app = chain_app(allocated=2)
        t0, t1 = list(app.tasks)[:2]
        ctx.occupy(0, app, t0, busy=False)
        ctx.occupy(1, app, t1, busy=False)
        assert select_preemption_slot(ctx) is None

    def test_over_consumer_loses_topo_latest_task(self):
        ctx = FakeCtx(4)
        app = chain_app(num_tasks=3, allocated=1)
        order = app.graph.topological_order
        ctx.occupy(0, app, order[0], busy=False)
        ctx.occupy(1, app, order[1], busy=False)
        ctx.occupy(2, app, order[2], busy=False)
        assert select_preemption_slot(ctx) == 2

    def test_largest_over_consumer_selected(self):
        ctx = FakeCtx(6)
        small = chain_app(num_tasks=2, allocated=1, app_id=0)
        big = chain_app(num_tasks=3, allocated=0, app_id=1)
        ctx.occupy(0, small, list(small.tasks)[0], busy=False)
        ctx.occupy(1, small, list(small.tasks)[1], busy=False)
        big_order = big.graph.topological_order
        ctx.occupy(2, big, big_order[0], busy=False)
        ctx.occupy(3, big, big_order[1], busy=False)
        ctx.occupy(4, big, big_order[2], busy=False)
        # big over-consumes by 3, small by 1 -> big's latest task (slot 4).
        assert select_preemption_slot(ctx) == 4

    def test_busy_latest_task_delays_preemption(self):
        ctx = FakeCtx(4)
        app = chain_app(num_tasks=2, allocated=0)
        order = app.graph.topological_order
        ctx.occupy(0, app, order[0], busy=False)
        ctx.occupy(1, app, order[1], busy=True)
        # Line 5 found a waiting slot (0), but the topologically-latest
        # running task (slot 1) is mid-item -> delay (None).
        assert select_preemption_slot(ctx) is None

    def test_fully_busy_over_consumer_ignored(self):
        ctx = FakeCtx(4)
        app = chain_app(num_tasks=2, allocated=0)
        order = app.graph.topological_order
        ctx.occupy(0, app, order[0], busy=True)
        ctx.occupy(1, app, order[1], busy=True)
        assert select_preemption_slot(ctx) is None


class TestEndToEndPreemption:
    def _starvation_workload(self):
        """A pipelining hog, then a high-priority latecomer."""
        hog = chain_graph("hog", [100.0, 100.0])
        vip = chain_graph("vip", [100.0])
        return [
            request(hog, batch_size=20, priority=1, arrival_ms=0.0),
            request(vip, batch_size=1, priority=9, arrival_ms=500.0),
        ]

    def test_preemption_fires_and_everyone_finishes(self):
        config = small_config(num_slots=2)
        hv, results = run_named(
            "nimblock", self._starvation_workload(), config
        )
        preemptions = hv.trace.of_kind(TraceKind.TASK_PREEMPTED)
        assert preemptions, "expected the hog to be batch-preempted"
        assert all(e.app_id == 0 for e in preemptions)
        assert results[0].preemption_count >= 1

    def test_preempted_batch_state_resumes_not_restarts(self):
        config = small_config(num_slots=2)
        hv, results = run_named(
            "nimblock", self._starvation_workload(), config
        )
        # Every (task, item) pair must execute exactly once even across
        # preemption: run_busy equals the ideal sum of item latencies.
        hog = results[0]
        assert hog.run_busy_ms == 20 * 100.0 * 2

    def test_vip_latency_improves_with_preemption(self):
        config = small_config(num_slots=2)
        _, with_p = run_named(
            "nimblock", self._starvation_workload(), config
        )
        _, without_p = run_named(
            "nimblock_no_preempt", self._starvation_workload(), config
        )
        assert with_p[1].response_ms < without_p[1].response_ms

    def test_no_preempt_variant_never_preempts(self):
        config = small_config(num_slots=2)
        hv, _ = run_named(
            "nimblock_no_preempt", self._starvation_workload(), config
        )
        assert hv.trace.of_kind(TraceKind.TASK_PREEMPTED) == []
