"""Tests for synthetic HLS reports (repro.apps.hls)."""

from __future__ import annotations

import pytest

from repro.apps.catalog import BENCHMARK_NAMES, get_benchmark
from repro.apps.hls import (
    application_latency_estimate_ms,
    estimates_fit_slot,
    reports_for_benchmark,
    synthesize_report,
)
from repro.errors import WorkloadError
from repro.taskgraph.graph import TaskSpec


class TestSynthesizeReport:
    def test_exact_estimate_with_zero_error(self):
        spec = TaskSpec("t", 123.0)
        report = synthesize_report(spec, estimation_error=0.0)
        assert report.latency_estimate_ms == 123.0

    def test_bounded_error(self):
        spec = TaskSpec("some_task", 100.0)
        report = synthesize_report(spec, estimation_error=0.2)
        assert 80.0 <= report.latency_estimate_ms <= 120.0

    def test_deterministic_across_calls(self):
        spec = TaskSpec("stable", 50.0)
        first = synthesize_report(spec, estimation_error=0.3)
        second = synthesize_report(spec, estimation_error=0.3)
        assert first.latency_estimate_ms == second.latency_estimate_ms

    def test_rejects_out_of_range_error(self):
        with pytest.raises(WorkloadError, match="estimation_error"):
            synthesize_report(TaskSpec("t", 1.0), estimation_error=1.0)

    def test_interfaces_present(self):
        report = synthesize_report(TaskSpec("t", 1.0))
        assert report.control_interface == "axilite"
        assert report.data_interface == "axi4"

    def test_longer_tasks_report_denser_logic(self):
        short = synthesize_report(TaskSpec("short", 10.0))
        long_ = synthesize_report(TaskSpec("long", 5000.0))
        assert sum(long_.resources.counts) > sum(short.resources.counts)


class TestBenchmarkReports:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_one_report_per_task(self, name):
        graph = get_benchmark(name).graph
        reports = reports_for_benchmark(graph)
        assert set(reports) == set(graph.topological_order)

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_every_task_fits_one_slot(self, name):
        graph = get_benchmark(name).graph
        assert estimates_fit_slot(graph) == []


class TestApplicationEstimate:
    def test_scales_with_batch(self):
        graph = get_benchmark("lenet").graph
        one = application_latency_estimate_ms(graph, 1, 80.0)
        five = application_latency_estimate_ms(graph, 5, 80.0)
        assert five > one
        # batch items scale the compute term, not the reconfig term.
        compute = graph.total_latency_ms()
        assert five - one == pytest.approx(4 * compute)

    def test_counts_one_reconfig_per_task(self):
        graph = get_benchmark("lenet").graph
        estimate = application_latency_estimate_ms(graph, 1, 80.0)
        assert estimate == pytest.approx(
            graph.total_latency_ms() + 3 * 80.0
        )

    def test_rejects_bad_batch(self):
        with pytest.raises(WorkloadError, match="batch"):
            application_latency_estimate_ms(
                get_benchmark("lenet").graph, 0, 80.0
            )
