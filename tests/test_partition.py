"""Tests for the layer partitioner (repro.taskgraph.partition)."""

from __future__ import annotations

import pytest

from repro.errors import PartitionError
from repro.taskgraph.partition import LayerSpec, partition_layers


def layers(*specs):
    return [LayerSpec(*spec) for spec in specs]


class TestLayerSpec:
    def test_rejects_nonpositive_resources(self):
        with pytest.raises(PartitionError, match="resource_units"):
            LayerSpec("l", 0.0, 1.0)

    def test_rejects_nonpositive_latency(self):
        with pytest.raises(PartitionError, match="latency_ms"):
            LayerSpec("l", 1.0, 0.0)


class TestMerging:
    def test_lenet_style_pairing(self):
        # Six layers of 0.5 units pair into three tasks in a 1.0 slot —
        # the paper's own LeNet example.
        graph = partition_layers(
            "lenet6",
            layers(*[(f"l{i}", 0.5, 10.0) for i in range(6)]),
            slot_capacity=1.0,
        )
        assert graph.num_tasks == 3
        assert graph.num_edges == 2
        assert all(
            graph.task(t).latency_ms == 20.0 for t in graph.topological_order
        )

    def test_no_merge_when_each_layer_fills_slot(self):
        graph = partition_layers(
            "g", layers(("a", 0.9, 1.0), ("b", 0.9, 2.0)), slot_capacity=1.0
        )
        assert graph.num_tasks == 2
        assert graph.num_edges == 1

    def test_merged_task_latency_sums(self):
        graph = partition_layers(
            "g", layers(("a", 0.3, 1.0), ("b", 0.3, 2.0), ("c", 0.9, 4.0)),
            slot_capacity=1.0,
        )
        order = graph.topological_order
        assert graph.num_tasks == 2
        assert graph.task(order[0]).latency_ms == 3.0
        assert graph.task(order[1]).latency_ms == 4.0


class TestSplitting:
    def test_oversized_layer_splits_into_parallel_tasks(self):
        graph = partition_layers(
            "g", layers(("in", 0.5, 1.0), ("big", 2.5, 9.0), ("out", 0.5, 1.0)),
            slot_capacity=1.0,
        )
        # big needs ceil(2.5) = 3 pieces; dense edges in->3 and 3->out.
        assert graph.num_tasks == 5
        assert graph.num_edges == 6
        middle = [t for t in graph.topological_order
                  if graph.task(t).stage == 1]
        assert len(middle) == 3
        assert all(graph.task(t).latency_ms == 3.0 for t in middle)

    def test_unsplittable_oversized_layer_rejected(self):
        with pytest.raises(PartitionError, match="not splittable"):
            partition_layers(
                "g",
                layers(("fc", 2.0, 1.0, False)),
                slot_capacity=1.0,
            )


class TestValidation:
    def test_rejects_no_layers(self):
        with pytest.raises(PartitionError, match="no layers"):
            partition_layers("g", [], 1.0)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(PartitionError, match="slot_capacity"):
            partition_layers("g", layers(("a", 0.5, 1.0)), 0.0)

    def test_every_task_fits_the_slot(self):
        specs = layers(
            ("a", 0.4, 1.0), ("b", 0.4, 1.0), ("c", 1.7, 2.0), ("d", 0.2, 1.0)
        )
        graph = partition_layers("g", specs, slot_capacity=1.0)
        # Proxy check: split pieces of c have per-piece latency 1.0 each.
        stage_of_c = 1
        pieces = [t for t in graph.topological_order
                  if graph.task(t).stage == stage_of_c]
        assert len(pieces) == 2
