"""Golden regression pins: exact response times for a fixed workload.

These values encode the precise execution semantics of every scheduler on
one deterministic five-event workload (default ZCU106 platform). Any
change to scheduling logic, timing accounting, dispatch overhead or
readiness rules will shift them — if you changed semantics deliberately,
regenerate the numbers and say so in the commit; if you didn't, you just
caught a regression.
"""

from __future__ import annotations

import pytest

from repro.hypervisor.hypervisor import Hypervisor
from repro.schedulers.registry import make_scheduler
from repro.workload.generator import EventGenerator

#: Responses (ms) per event, per scheduler, for the golden workload.
GOLDEN_RESPONSES = {
    "baseline": [22992.0, 23338.0, 41548.0, 42306.0, 42748.0],
    "fcfs": [23726.0, 1000.0, 19090.0, 1256.0, 1130.0],
    "prema": [41640.0, 19944.0, 19090.0, 1122.0, 19824.0],
    "rr": [28588.0, 5916.0, 20332.0, 3126.0, 1052.0],
    "nimblock": [12550.0, 8082.0, 6344.0, 654.0, 6526.0],
    "nimblock_no_pipe": [41640.0, 19944.0, 19090.0, 1122.0, 19824.0],
    "edf": [23726.0, 1000.0, 19090.0, 1256.0, 1130.0],
    "dml_static": [6832.0, 756.0, 6836.0, 1752.0, 2650.0],
}


def golden_sequence():
    """Five mixed events: of/5, imgc/3, of/4(hi), lenet/6(hi), imgc/5."""
    return EventGenerator(
        99, benchmarks=("lenet", "imgc", "3dr", "of")
    ).sequence(
        num_events=5, delay_range_ms=(200.0, 200.0), batch_range=(2, 6),
        label="golden",
    )


@pytest.mark.parametrize("scheduler_name", sorted(GOLDEN_RESPONSES))
def test_golden_responses(scheduler_name):
    hypervisor = Hypervisor(make_scheduler(scheduler_name))
    for request in golden_sequence().to_requests():
        hypervisor.submit(request)
    hypervisor.run()
    measured = [round(r.response_ms, 2) for r in hypervisor.results()]
    assert measured == GOLDEN_RESPONSES[scheduler_name]


def test_golden_relationships():
    """Cross-scheduler facts the golden workload exhibits."""
    runs = {}
    for name in GOLDEN_RESPONSES:
        runs[name] = GOLDEN_RESPONSES[name]
    mean = lambda xs: sum(xs) / len(xs)
    # Nimblock has the lowest mean response on this workload.
    assert min(runs, key=lambda n: mean(runs[n])) in (
        "nimblock", "dml_static"
    )
    # Without pipelining Nimblock degenerates to PREMA-like behaviour on
    # this workload (same bulk readiness, token candidates).
    assert runs["nimblock_no_pipe"] == runs["prema"]
    # The high-priority LeNet event (index 3) is served fastest by
    # Nimblock.
    assert runs["nimblock"][3] == min(r[3] for r in runs.values())
