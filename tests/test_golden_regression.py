"""Golden regression pins: exact response times for a fixed workload.

These values encode the precise execution semantics of every scheduler on
one deterministic five-event workload (default ZCU106 platform). Any
change to scheduling logic, timing accounting, dispatch overhead or
readiness rules will shift them — if you changed semantics deliberately,
regenerate the numbers and say so in the commit; if you didn't, you just
caught a regression.
"""

from __future__ import annotations

from dataclasses import fields, replace

import pytest

from repro.config import SystemConfig
from repro.experiments.runner import (
    ExperimentSettings,
    RunCache,
    config_fingerprint,
)
from repro.hypervisor.hypervisor import Hypervisor
from repro.schedulers.registry import make_scheduler
from repro.workload.generator import EventGenerator

#: Responses (ms) per event, per scheduler, for the golden workload.
GOLDEN_RESPONSES = {
    "baseline": [22992.0, 23338.0, 41548.0, 42306.0, 42748.0],
    "fcfs": [23726.0, 1000.0, 19090.0, 1256.0, 1130.0],
    "prema": [41640.0, 19944.0, 19090.0, 1122.0, 19824.0],
    "rr": [28588.0, 5916.0, 20332.0, 3126.0, 1052.0],
    "nimblock": [12550.0, 8082.0, 6344.0, 654.0, 6526.0],
    "nimblock_no_pipe": [41640.0, 19944.0, 19090.0, 1122.0, 19824.0],
    "edf": [23726.0, 1000.0, 19090.0, 1256.0, 1130.0],
    "dml_static": [6832.0, 756.0, 6836.0, 1752.0, 2650.0],
}


def golden_sequence():
    """Five mixed events: of/5, imgc/3, of/4(hi), lenet/6(hi), imgc/5."""
    return EventGenerator(
        99, benchmarks=("lenet", "imgc", "3dr", "of")
    ).sequence(
        num_events=5, delay_range_ms=(200.0, 200.0), batch_range=(2, 6),
        label="golden",
    )


@pytest.mark.parametrize("scheduler_name", sorted(GOLDEN_RESPONSES))
def test_golden_responses(scheduler_name):
    hypervisor = Hypervisor(make_scheduler(scheduler_name))
    for request in golden_sequence().to_requests():
        hypervisor.submit(request)
    hypervisor.run()
    measured = [round(r.response_ms, 2) for r in hypervisor.results()]
    assert measured == GOLDEN_RESPONSES[scheduler_name]


def test_golden_relationships():
    """Cross-scheduler facts the golden workload exhibits."""
    runs = {}
    for name in GOLDEN_RESPONSES:
        runs[name] = GOLDEN_RESPONSES[name]
    mean = lambda xs: sum(xs) / len(xs)
    # Nimblock has the lowest mean response on this workload.
    assert min(runs, key=lambda n: mean(runs[n])) in (
        "nimblock", "dml_static"
    )
    # Without pipelining Nimblock degenerates to PREMA-like behaviour on
    # this workload (same bulk readiness, token candidates).
    assert runs["nimblock_no_pipe"] == runs["prema"]
    # The high-priority LeNet event (index 3) is served fastest by
    # Nimblock.
    assert runs["nimblock"][3] == min(r[3] for r in runs.values())


# -- extension sweeps --------------------------------------------------------
# Pinned aggregates for the two extension studies at fixed small scale.
# Regeneration (only after a deliberate semantics change):
#   PYTHONPATH=src python -c "from repro.experiments import ext_schedulers;
#   from repro.experiments.runner import *; r = ext_schedulers.run(
#   cache=RunCache(), settings=ExperimentSettings(1, 6));
#   print({k: round(v, 4) for k, v in sorted(r.reductions.items())})"

#: Mean response-time reduction vs no-sharing baseline, 1 sequence x
#: 6 events, per (scenario, scheduler).
GOLDEN_EXT_REDUCTIONS = {
    ("realtime", "dml_static"): 9.091,
    ("realtime", "edf"): 5.447,
    ("realtime", "nimblock"): 11.0567,
    ("realtime", "prema"): 5.4148,
    ("standard", "dml_static"): 9.175,
    ("standard", "edf"): 5.4479,
    ("standard", "nimblock"): 11.032,
    ("standard", "prema"): 5.3883,
    ("stress", "dml_static"): 9.1008,
    ("stress", "edf"): 5.447,
    ("stress", "nimblock"): 11.0652,
    ("stress", "prema"): 5.4157,
}

#: Response degradation under the mixed chaos scenario, 1 sequence x
#: 5 events, per (scheduler, fault rate) — with the injected fault counts
#: that produced them (pins the seeded fault stream itself).
GOLDEN_FAULT_DEGRADATION = {
    ("nimblock", 0.0): 1.0,
    ("nimblock", 0.1): 1.1282,
    ("rr", 0.0): 1.0,
    ("rr", 0.1): 0.9724,
}
GOLDEN_FAULT_COUNTS = {
    ("nimblock", 0.0): 0,
    ("nimblock", 0.1): 50,
    ("rr", 0.0): 0,
    ("rr", 0.1): 96,
}


def test_golden_ext_schedulers_sweep():
    from repro.experiments import ext_schedulers

    result = ext_schedulers.run(
        cache=RunCache(),
        settings=ExperimentSettings(num_sequences=1, num_events=6),
    )
    measured = {
        key: round(value, 4) for key, value in result.reductions.items()
    }
    assert measured == GOLDEN_EXT_REDUCTIONS


def test_golden_ext_faults_sweep():
    from repro.experiments import ext_faults

    result = ext_faults.run(
        cache=RunCache(),
        settings=ExperimentSettings(num_sequences=1, num_events=5),
        fault_rates=(0.0, 0.1),
        schedulers=("rr", "nimblock"),
        jobs=1,
    )
    measured = {
        key: round(value, 4) for key, value in result.degradation.items()
    }
    assert measured == GOLDEN_FAULT_DEGRADATION
    assert dict(result.fault_counts) == GOLDEN_FAULT_COUNTS


# -- cache keying ------------------------------------------------------------
def test_config_fingerprint_sensitive_to_every_field():
    """Mutating any SystemConfig field must change the cache fingerprint.

    This is what makes a stale disk-cache hit impossible: a run recorded
    under one platform description can never satisfy a lookup for another.
    """
    baseline = SystemConfig()
    base_print = config_fingerprint(baseline)
    # One valid (post-init-passing) mutation per field. A new field must
    # be added here — that is deliberate: it also needs a CACHE_SALT bump
    # review.
    mutations = {
        "num_slots": baseline.num_slots + 1,
        "reconfig_ms": baseline.reconfig_ms + 1.0,
        "dispatch_overhead_ms": baseline.dispatch_overhead_ms + 1.0,
        "scheduling_interval_ms": baseline.scheduling_interval_ms + 1.0,
        "hls_estimation_error": 0.5,
        "priority_levels": (*baseline.priority_levels, 27),
        "token_alpha": baseline.token_alpha * 2,
        "saturation_threshold": baseline.saturation_threshold / 2,
    }
    assert set(mutations) == {f.name for f in fields(SystemConfig)}, (
        "new SystemConfig field: add a mutation here and consider whether "
        "CACHE_SALT needs a bump"
    )
    for name, mutated in mutations.items():
        changed = replace(baseline, **{name: mutated})
        assert config_fingerprint(changed) != base_print, (
            f"fingerprint ignored SystemConfig.{name}"
        )
