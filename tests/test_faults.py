"""Tests for the fault-injection & recovery subsystem (repro.faults).

Covers the fault models, the deterministic injector, the hypervisor's
recovery machinery (eviction, rollback, relocation, retry-with-backoff,
blacklisting, stall breaking), the reliability metrics, the chaos
scenarios, and the two cross-cutting guarantees:

* **determinism** — the same chaos scenario and seed twice yields
  byte-identical traces;
* **zero overhead when disabled** — a disabled config injects nothing and
  the run is identical to one with no injector at all.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import (
    ExperimentError,
    FaultInjectionError,
    RecoveryError,
    ReproError,
    SlotStateError,
    WorkloadError,
)
from repro.experiments.ext_faults import chaos_report, run_chaos_sequence
from repro.faults import (
    FaultConfig,
    FaultInjector,
    FaultStats,
    RecoveryPolicy,
)
from repro.hypervisor.application import TaskRunState
from repro.hypervisor.hypervisor import Hypervisor
from repro.metrics.reliability import (
    degradation_factor,
    goodput_items_per_s,
    mean_time_to_recovery_ms,
    recovery_times_ms,
    reliability_report,
    work_lost_ms,
)
from repro.overlay.device import Slot, SlotHealth, SlotPhase
from repro.schedulers.registry import ALL_SCHEDULERS, make_scheduler
from repro.sim.trace import Trace, TraceKind
from repro.sim.trace_export import load_trace, save_trace, trace_to_dict
from repro.workload.scenarios import (
    CHAOS_SCENARIOS,
    MIXED_FAULTS,
    PERMANENT_FAULTS,
    RECONFIG_FAULTS,
    STRESS,
    TRANSIENT_FAULTS,
    chaos_scenario,
    scenario_sequence,
)
from tests.conftest import request, small_config
from repro.taskgraph.builders import chain_graph


# ---------------------------------------------------------------------------
# Models
# ---------------------------------------------------------------------------
class TestFaultConfig:
    def test_default_is_disabled(self):
        assert not FaultConfig().enabled

    @pytest.mark.parametrize("kwargs", [
        {"transient_mtbf_ms": 1000.0},
        {"permanent_mtbf_ms": 1000.0},
        {"config_failure_prob": 0.1},
        {"config_jitter_frac": 0.1},
    ])
    def test_any_knob_enables(self, kwargs):
        assert FaultConfig(**kwargs).enabled

    @pytest.mark.parametrize("kwargs", [
        {"transient_mtbf_ms": -1.0},
        {"permanent_mtbf_ms": -0.5},
        {"transient_repair_ms": 0.0},
        {"transient_repair_ms": -10.0},
        {"config_failure_prob": 1.0},
        {"config_failure_prob": -0.1},
        {"config_jitter_frac": 1.5},
        {"config_jitter_frac": -0.2},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(FaultInjectionError):
            FaultConfig(**kwargs)

    def test_error_hierarchy(self):
        assert issubclass(FaultInjectionError, ReproError)
        assert issubclass(RecoveryError, ReproError)


class TestFaultStats:
    def test_total_faults(self):
        stats = FaultStats(
            transient_faults=3, permanent_faults=1, config_failures=2,
        )
        assert stats.total_faults == 6

    def test_fresh_stats_are_zero(self):
        assert FaultStats().total_faults == 0


class TestRecoveryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RecoveryPolicy(
            backoff_base_ms=5.0, backoff_factor=2.0, backoff_cap_ms=18.0,
        )
        assert policy.backoff_ms(1) == 5.0
        assert policy.backoff_ms(2) == 10.0
        assert policy.backoff_ms(3) == 18.0  # capped (would be 20)
        assert policy.backoff_ms(10) == 18.0

    @pytest.mark.parametrize("kwargs", [
        {"backoff_base_ms": 0.0},
        {"backoff_factor": 0.5},
        {"backoff_cap_ms": 0.0},
        {"min_healthy_slots": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(RecoveryError):
            RecoveryPolicy(**kwargs)


# ---------------------------------------------------------------------------
# Slot health state machine
# ---------------------------------------------------------------------------
class TestSlotHealth:
    def test_fault_and_repair_cycle(self):
        slot = Slot(0)
        assert slot.is_healthy and slot.is_free
        slot.mark_faulty()
        assert slot.health is SlotHealth.FAULTY
        assert not slot.is_free  # EMPTY but unhealthy
        slot.repair()
        assert slot.is_healthy and slot.is_free

    def test_dead_is_terminal(self):
        slot = Slot(0)
        slot.mark_dead()
        assert slot.health is SlotHealth.DEAD
        with pytest.raises(SlotStateError):
            slot.repair()
        with pytest.raises(SlotStateError):
            slot.mark_faulty()

    def test_occupied_slot_must_be_evicted_first(self):
        slot = Slot(0)
        slot.begin_reconfig()
        slot.host("t")
        with pytest.raises(SlotStateError, match="evicted"):
            slot.mark_faulty()
        with pytest.raises(SlotStateError, match="evicted"):
            slot.mark_dead()

    def test_interrupt_item(self):
        slot = Slot(0)
        slot.begin_reconfig()
        slot.host("t")
        slot.start_item()
        slot.interrupt_item()
        assert not slot.busy
        with pytest.raises(SlotStateError, match="no in-flight item"):
            slot.interrupt_item()

    def test_abort_reconfig(self):
        slot = Slot(0)
        slot.begin_reconfig()
        slot.abort_reconfig()
        assert slot.phase is SlotPhase.EMPTY
        with pytest.raises(SlotStateError):
            slot.abort_reconfig()

    def test_repair_requires_faulty(self):
        with pytest.raises(SlotStateError, match="cannot repair"):
            Slot(0).repair()


# ---------------------------------------------------------------------------
# Injector wiring
# ---------------------------------------------------------------------------
class TestInjectorWiring:
    def test_single_attachment(self):
        injector = FaultInjector(FaultConfig(transient_mtbf_ms=1000.0))
        hv = Hypervisor(make_scheduler("fcfs"), faults=injector)
        assert injector.attached
        assert hv.faults is injector
        with pytest.raises(FaultInjectionError, match="exactly one"):
            Hypervisor(make_scheduler("fcfs"), faults=injector)

    def test_unattached_draw_still_works(self):
        # draw_config_outcome needs no hypervisor: it only consumes RNG.
        injector = FaultInjector(FaultConfig(config_failure_prob=0.5))
        outcomes = {injector.draw_config_outcome(80.0)[0] for _ in range(64)}
        assert outcomes == {True, False}

    def test_disabled_modes_draw_nothing(self):
        injector = FaultInjector(FaultConfig())
        assert injector.draw_config_outcome(80.0) == (False, 0.0)

    def test_jitter_bounded(self):
        injector = FaultInjector(FaultConfig(config_jitter_frac=0.25))
        for _ in range(128):
            will_fail, jitter = injector.draw_config_outcome(80.0)
            assert not will_fail
            assert -20.0 <= jitter <= 20.0


# ---------------------------------------------------------------------------
# Hypervisor fault handling (scripted, hand-checkable)
# ---------------------------------------------------------------------------
def _two_slot_hv(scheduler="fcfs", **extra):
    return Hypervisor(
        make_scheduler(scheduler), config=small_config(num_slots=2), **extra
    )


class TestScriptedFaults:
    def test_fault_on_busy_slot_evicts_and_relocates(self):
        hv = _two_slot_hv()
        hv.submit(request(chain_graph("app", [100.0]), batch_size=4))
        # Let the task configure (80ms) and start its first item.
        hv.run(until=100.0)
        slot = hv.device.slot(0)
        assert slot.phase is SlotPhase.OCCUPIED and slot.busy
        app = hv.apps[0]
        task = next(iter(app.tasks.values()))
        assert hv.inject_slot_fault(100.0, 0, permanent=False)
        assert task.state is TaskRunState.PENDING
        assert task.relocated_from == 0
        assert hv.fault_stats.transient_faults == 1
        assert hv.fault_stats.evictions == 1
        assert hv.fault_stats.items_lost == 1
        # 20ms of the in-flight item (started at 80ms) was destroyed.
        assert hv.fault_stats.work_lost_ms == pytest.approx(20.0)
        # The run still completes: the task relocates to healthy slot 1.
        hv.run()
        assert hv.all_retired
        assert task.items_done == 4
        relocated = hv.trace.of_kind(TraceKind.TASK_RELOCATED)
        assert len(relocated) == 1
        assert relocated[0].slot == 1 and relocated[0].detail == 0.0

    def test_batch_progress_survives_eviction(self):
        hv = _two_slot_hv()
        hv.submit(request(chain_graph("app", [50.0]), batch_size=6))
        # 80ms config + 2 full items = 180ms; fault at a batch boundary.
        hv.run(until=180.0)
        app = hv.apps[0]
        task = next(iter(app.tasks.values()))
        done_before = task.items_done
        assert done_before >= 2
        assert hv.inject_slot_fault(hv.engine.now, 0)
        assert task.items_done == done_before  # checkpoint retained
        hv.run()
        assert hv.all_retired

    def test_dead_slot_refuses_further_faults(self):
        hv = Hypervisor(
            make_scheduler("fcfs"), config=small_config(num_slots=3)
        )
        hv.submit(request(chain_graph("app", [50.0]), batch_size=1))
        assert hv.inject_slot_fault(0.0, 2, permanent=True)
        assert not hv.inject_slot_fault(0.0, 2, permanent=True)
        assert not hv.inject_slot_fault(0.0, 2, permanent=False)
        assert hv.fault_stats.permanent_faults == 1

    def test_min_healthy_guard_refuses_last_slot(self):
        hv = _two_slot_hv()
        hv.submit(request(chain_graph("app", [50.0]), batch_size=1))
        assert hv.inject_slot_fault(0.0, 0, permanent=True)
        # Killing slot 1 would leave zero healthy slots: refused.
        assert not hv.inject_slot_fault(0.0, 1, permanent=True)
        assert len(hv.device.healthy_slots()) == 1
        # Transient faults are still allowed (they repair).
        assert hv.inject_slot_fault(0.0, 1, permanent=False)
        assert hv.repair_slot(5.0, 1)
        hv.run()
        assert hv.all_retired

    def test_fault_during_reconfiguration_fails_the_config(self):
        hv = _two_slot_hv()
        hv.submit(request(chain_graph("app", [50.0]), batch_size=1))
        hv.run(until=40.0)  # mid-reconfiguration (config takes 80ms)
        assert hv.device.slot(0).phase is SlotPhase.RECONFIGURING
        assert hv.inject_slot_fault(40.0, 0)
        hv.repair_slot(45.0, 0)
        hv.run()
        assert hv.all_retired
        failed = hv.trace.of_kind(TraceKind.CONFIG_FAILED)
        assert len(failed) == 1
        assert hv.fault_stats.config_failures == 1
        # The retried configuration eventually lands.
        assert len(hv.trace.of_kind(TraceKind.TASK_CONFIG_DONE)) == 1

    def test_repair_is_idempotent_and_guarded(self):
        hv = _two_slot_hv()
        assert not hv.repair_slot(0.0, 0)  # healthy: nothing to repair
        hv.device.slot(0).mark_dead()
        assert not hv.repair_slot(0.0, 0)  # dead: never repairs

    def test_faults_traced_with_detail(self):
        hv = _two_slot_hv()
        hv.submit(request(chain_graph("app", [100.0]), batch_size=2))
        hv.run(until=120.0)
        hv.inject_slot_fault(120.0, 0)
        hv.repair_slot(280.0, 0)
        hv.run()
        fault = hv.trace.of_kind(TraceKind.SLOT_FAULT)[0]
        assert fault.slot == 0
        assert fault.app_id == 0
        assert fault.detail == pytest.approx(40.0)  # item started at 80ms
        assert recovery_times_ms(hv.trace) == pytest.approx([160.0])


class TestRetryWithBackoff:
    def test_failed_config_retries_until_success(self):
        # Fail every reconfiguration until we stop corrupting the slot.
        hv = _two_slot_hv()
        hv.submit(request(chain_graph("app", [50.0]), batch_size=1))
        hv.run(until=40.0)
        hv.inject_slot_fault(40.0, 0)
        hv.repair_slot(41.0, 0)
        hv.run()
        assert hv.all_retired
        # One failure, one successful retry; backoff delayed the retry.
        done = hv.trace.of_kind(TraceKind.TASK_CONFIG_DONE)
        starts = hv.trace.of_kind(TraceKind.TASK_CONFIG_START)
        assert len(done) == 1 and len(starts) == 2

    def test_custom_recovery_policy_is_used(self):
        policy = RecoveryPolicy(backoff_base_ms=50.0, backoff_cap_ms=50.0)
        hv = _two_slot_hv(recovery=policy)
        assert hv.recovery is policy


# ---------------------------------------------------------------------------
# End-to-end chaos runs
# ---------------------------------------------------------------------------
def _tiny_sequence(seed=1, events=4):
    return scenario_sequence(STRESS, seed, events)


class TestChaosRuns:
    def test_determinism_byte_identical_traces(self):
        """Same chaos scenario + same seed twice => byte-identical traces."""
        sequence = _tiny_sequence()
        fault_config = MIXED_FAULTS.fault_config(0.1, seed=7)
        _, first, _ = run_chaos_sequence("nimblock", sequence, fault_config)
        _, second, _ = run_chaos_sequence("nimblock", sequence, fault_config)
        assert first.events == second.events
        assert (
            json.dumps(trace_to_dict(first)).encode()
            == json.dumps(trace_to_dict(second)).encode()
        )

    def test_different_fault_seeds_diverge(self):
        sequence = _tiny_sequence()
        _, a, _ = run_chaos_sequence(
            "nimblock", sequence, TRANSIENT_FAULTS.fault_config(0.2, seed=1)
        )
        _, b, _ = run_chaos_sequence(
            "nimblock", sequence, TRANSIENT_FAULTS.fault_config(0.2, seed=2)
        )
        assert a.events != b.events

    def test_zero_rate_identical_to_fault_free(self):
        """A disabled config is byte-identical to running no injector."""
        sequence = _tiny_sequence()
        clean_results, clean_trace, _ = run_chaos_sequence("fcfs", sequence)
        zero = MIXED_FAULTS.fault_config(0.0, seed=9)
        assert not zero.enabled
        results, trace, stats = run_chaos_sequence("fcfs", sequence, zero)
        assert trace.events == clean_trace.events
        assert stats.total_faults == 0
        assert degradation_factor(clean_results, results) == pytest.approx(1.0)

    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
    def test_every_scheduler_survives_mixed_chaos(self, scheduler):
        sequence = _tiny_sequence(seed=3)
        fault_config = MIXED_FAULTS.fault_config(0.1, seed=3)
        results, trace, stats = run_chaos_sequence(
            scheduler, sequence, fault_config
        )
        assert len(results) == len(sequence.events)
        assert all(r.response_ms > 0 for r in results)

    def test_survives_permanent_slot_blacklisting(self):
        """Aggressive permanent faults blacklist slots; the run still ends."""
        sequence = _tiny_sequence(seed=3, events=6)
        fault_config = PERMANENT_FAULTS.fault_config(20.0, seed=3)
        _, trace, stats = run_chaos_sequence("fcfs", sequence, fault_config)
        assert stats.permanent_faults > 0
        report = reliability_report(trace)
        assert report.permanent_faults == stats.permanent_faults

    def test_reconfig_faults_produce_failures_and_recoveries(self):
        sequence = _tiny_sequence(seed=2)
        fault_config = RECONFIG_FAULTS.fault_config(0.3, seed=2)
        _, trace, stats = run_chaos_sequence("prema", sequence, fault_config)
        assert stats.config_failures > 0
        assert stats.transient_faults == 0
        mttr = mean_time_to_recovery_ms(trace)
        assert not math.isnan(mttr) and mttr > 0

    def test_fault_stats_match_trace(self):
        sequence = _tiny_sequence(seed=5)
        fault_config = TRANSIENT_FAULTS.fault_config(0.2, seed=5)
        _, trace, stats = run_chaos_sequence("rr", sequence, fault_config)
        report = reliability_report(trace)
        assert report.slot_faults == stats.transient_faults
        assert report.repairs == stats.repairs
        assert report.relocations == stats.relocations
        assert report.work_lost_ms == pytest.approx(stats.work_lost_ms)


# ---------------------------------------------------------------------------
# Reliability metrics
# ---------------------------------------------------------------------------
def _synthetic_trace():
    trace = Trace()
    trace.record(0.0, TraceKind.APP_ARRIVED, app_id=0)
    trace.record(10.0, TraceKind.SLOT_FAULT, slot=3, detail=7.5)
    trace.record(50.0, TraceKind.SLOT_REPAIRED, slot=3)
    trace.record(60.0, TraceKind.CONFIG_FAILED, app_id=0, task_id="t",
                 detail=80.0)
    trace.record(200.0, TraceKind.TASK_CONFIG_DONE, app_id=0, task_id="t",
                 slot=1)
    trace.record(500.0, TraceKind.ITEM_DONE, app_id=0, task_id="t", slot=1)
    trace.record(1000.0, TraceKind.APP_RETIRED, app_id=0)
    return trace


class TestReliabilityMetrics:
    def test_goodput(self):
        assert goodput_items_per_s(_synthetic_trace()) == pytest.approx(1.0)
        assert goodput_items_per_s(Trace()) == 0.0

    def test_work_lost(self):
        assert work_lost_ms(_synthetic_trace()) == pytest.approx(87.5)

    def test_recovery_times(self):
        assert recovery_times_ms(_synthetic_trace()) == pytest.approx(
            [40.0, 140.0]
        )

    def test_mttr_nan_when_nothing_recovered(self):
        assert math.isnan(mean_time_to_recovery_ms(Trace()))

    def test_unrecovered_faults_contribute_nothing(self):
        trace = Trace()
        trace.record(0.0, TraceKind.SLOT_FAULT, slot=0, detail=0.0)
        assert recovery_times_ms(trace) == []

    def test_report_format(self):
        report = reliability_report(_synthetic_trace())
        assert report.slot_faults == 1
        assert report.permanent_faults == 0
        text = report.format()
        assert "faults=1" in text and "mttr=" in text

    def test_degradation_validation(self):
        with pytest.raises(ExperimentError, match="non-empty"):
            degradation_factor([], [])


# ---------------------------------------------------------------------------
# Chaos scenarios
# ---------------------------------------------------------------------------
class TestChaosScenarios:
    def test_lookup(self):
        assert chaos_scenario("mixed") is MIXED_FAULTS
        with pytest.raises(WorkloadError, match="unknown chaos scenario"):
            chaos_scenario("nope")

    def test_names_unique(self):
        names = [s.name for s in CHAOS_SCENARIOS]
        assert len(names) == len(set(names))

    def test_zero_rate_disables(self):
        for scenario in CHAOS_SCENARIOS:
            assert not scenario.fault_config(0.0).enabled

    def test_negative_rate_rejected(self):
        with pytest.raises(WorkloadError, match=">= 0"):
            TRANSIENT_FAULTS.fault_config(-0.1)

    def test_rate_scales_mtbf_inversely(self):
        mild = TRANSIENT_FAULTS.fault_config(0.05)
        wild = TRANSIENT_FAULTS.fault_config(0.1)
        assert mild.transient_mtbf_ms == 2 * wild.transient_mtbf_ms
        assert mild.permanent_mtbf_ms == 0.0

    def test_seed_threads_through(self):
        assert MIXED_FAULTS.fault_config(0.1, seed=42).seed == 42

    def test_probability_capped(self):
        config = RECONFIG_FAULTS.fault_config(5.0)
        assert config.config_failure_prob == pytest.approx(0.9)


# ---------------------------------------------------------------------------
# Trace export round-trip: every TraceKind member (incl. fault kinds)
# ---------------------------------------------------------------------------
class TestTraceKindRoundTrip:
    def test_every_kind_round_trips(self, tmp_path):
        trace = Trace()
        for offset, kind in enumerate(TraceKind):
            trace.record(
                float(offset), kind,
                app_id=offset, task_id=f"t{offset}", slot=offset % 4,
                detail=offset / 2.0,
            )
        assert {e.kind for e in trace} == set(TraceKind)
        rebuilt = load_trace(save_trace(trace, tmp_path / "all_kinds.json"))
        assert rebuilt.events == trace.events

    def test_chaos_trace_round_trips(self, tmp_path):
        _, trace, _ = run_chaos_sequence(
            "nimblock", _tiny_sequence(),
            MIXED_FAULTS.fault_config(0.1, seed=7),
        )
        kinds = {e.kind for e in trace}
        assert TraceKind.SLOT_FAULT in kinds
        rebuilt = load_trace(save_trace(trace, tmp_path / "chaos.json"))
        assert rebuilt.events == trace.events


# ---------------------------------------------------------------------------
# The `repro chaos` report
# ---------------------------------------------------------------------------
class TestChaosReport:
    def test_report_lists_requested_schedulers(self):
        text = chaos_report(
            scenario_name="transient", fault_rate=0.1, seed=1,
            num_events=3, schedulers=("nimblock",),
        )
        assert "nimblock" in text
        assert "scenario=transient" in text
        assert "goodput" in text

    def test_unknown_workload_rejected(self):
        with pytest.raises(ExperimentError, match="unknown workload"):
            chaos_report(workload_name="bogus", num_events=2)
