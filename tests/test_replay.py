"""Equivalence tests for the steady-state macro-event replay cache.

The replay cache (:mod:`repro.sim.replay`) is a pure execution
strategy: a run with replay enabled must be **byte-identical** — trace
rows, report payloads, per-app results, window aggregates, lifetime
counters — to the same run with replay disabled. These tests pin that
contract everywhere the cache attaches:

* the service loop, across every scheduler of the capacity study (the
  paper's five plus the ablations and extension policies), with replay
  actually *engaging* (hits > 0) at low arrival rates;
* the saturated and fault-injected regimes, where the gate must force
  100% fallback to live simulation without perturbing a single byte;
* the bare hypervisor and the cluster tier, where
  :meth:`~repro.hypervisor.hypervisor.Hypervisor.results` reads the
  backfilled per-app/per-task final state;
* the quiescent-gap window-close coalescing the service loop performs,
  which replay must keep exact (same windows closed, same totals).
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.experiments.ext_service import CAPACITY_SCHEDULERS
from repro.hypervisor.hypervisor import Hypervisor
from repro.schedulers.registry import make_scheduler
from repro.service.loop import ServiceLoop
from repro.sim.replay import ReplayCache
from repro.workload.arrivals import service_rate_process
from repro.workload.events import EventSpec

#: Benchmarks cycled by the bare-hypervisor sparse stream.
_BENCHMARKS = ("lenet", "imgc", "3dr", "of")


def _run_loop(
    scheduler: str,
    *,
    replay: bool,
    rate: float = 0.05,
    submissions: int = 250,
    seed: int = 3,
    mode: str = "full",
    window_ms: float = 60_000.0,
) -> ServiceLoop:
    loop = ServiceLoop(
        service_rate_process(rate, seed=seed),
        scheduler,
        admission="shed",
        seed=seed,
        max_submissions=submissions,
        window_ms=window_ms,
        mode=mode,
        replay=replay,
    )
    loop.report = loop.run()
    return loop


def _payload(report) -> str:
    return json.dumps(report.to_dict(), sort_keys=True)


def _row_digest(trace) -> str:
    digest = hashlib.sha256()
    for row in trace._rows:
        digest.update(repr(row).encode())
    return digest.hexdigest()


def _sparse_specs(count: int = 24, gap_ms: float = 500_000.0):
    return [
        EventSpec(
            benchmark=_BENCHMARKS[index % len(_BENCHMARKS)],
            batch_size=4 + index % 3,
            priority=1 + index % 3,
            arrival_ms=index * gap_ms,
        )
        for index in range(count)
    ]


def _bare_run(replay: bool, specs=None) -> Hypervisor:
    hv = Hypervisor(make_scheduler("nimblock"))
    if replay:
        hv._replay = ReplayCache(
            hv, scheduler_factory=lambda: make_scheduler("nimblock")
        )
    for spec in specs or _sparse_specs():
        hv.submit(spec.to_request())
    hv.run()
    return hv


class TestServiceLoopEquivalence:
    @pytest.mark.parametrize("scheduler", CAPACITY_SCHEDULERS)
    def test_low_rate_byte_identical_and_engaged(self, scheduler):
        """Replay on == replay off for every capacity-study scheduler,
        with the cache actually serving hits at low rate."""
        on = _run_loop(scheduler, replay=True)
        off = _run_loop(scheduler, replay=False)
        assert on.replay_hits > 0, "cache never engaged at low rate"
        assert off.replay_hits == 0 and off.replay_misses == 0
        assert _payload(on.report) == _payload(off.report)
        assert _row_digest(on.hv.trace) == _row_digest(off.hv.trace)
        assert on.hv.trace._total == off.hv.trace._total
        assert on.hv.trace._total_by_kind == off.hv.trace._total_by_kind

    def test_saturated_run_falls_back_byte_identical(self):
        """At full rate the board never drains, so nearly every arrival
        misses — and the bytes still match exactly."""
        on = _run_loop("nimblock", replay=True, rate=4.0,
                       submissions=1_200, seed=1)
        off = _run_loop("nimblock", replay=False, rate=4.0,
                        submissions=1_200, seed=1)
        assert on.replay_misses > on.replay_hits
        assert _payload(on.report) == _payload(off.report)
        assert _row_digest(on.hv.trace) == _row_digest(off.hv.trace)

    def test_mode_equivalence_with_replay(self):
        """Metrics-mode replay-on matches full-mode replay-off."""
        metrics_on = _run_loop("nimblock", replay=True, mode="metrics")
        full_off = _run_loop("nimblock", replay=False, mode="full")
        assert metrics_on.replay_hits > 0
        assert _payload(metrics_on.report) == _payload(full_off.report)

    def test_report_payload_is_replay_blind(self):
        """The deterministic payload must not leak replay counters."""
        loop = _run_loop("nimblock", replay=True)
        payload = loop.report.to_dict()
        assert "replay_hits" not in payload
        assert "replay_misses" not in payload
        # ...but the report object carries them for benchmarks/observe.
        assert loop.report.replay_hits == loop.replay_hits > 0

    def test_window_close_coalescing_preserved(self):
        """Quiescent gaps batch-advance the close chain identically with
        replay on: same windows closed, far fewer than the boundary
        count the span covers, and identical engine event totals."""
        on = _run_loop("nimblock", replay=True, rate=0.002,
                       submissions=40, seed=7)
        off = _run_loop("nimblock", replay=False, rate=0.002,
                        submissions=40, seed=7)
        assert on.report.windows_closed == off.report.windows_closed
        assert on.report.engine_events == off.report.engine_events
        boundaries = int(on.report.span_ms // on.report.window_ms)
        assert boundaries > 4 * on.report.windows_closed, (
            "quiescent gaps were not coalesced: "
            f"{on.report.windows_closed} closes over "
            f"{boundaries} boundaries"
        )
        assert _payload(on.report) == _payload(off.report)


class TestBareHypervisorEquivalence:
    def test_results_and_trace_identical(self):
        """Per-app results (timing, per-task counters, busy sums) match
        the live run exactly on replay-applied apps."""
        on = _bare_run(True)
        off = _bare_run(False)
        assert on._replay.hits > 0
        assert on.engine.now == off.engine.now
        assert on.engine.processed == off.engine.processed
        assert on.scheduler_passes == off.scheduler_passes
        assert on._port.busy_ms == off._port.busy_ms
        assert on._port.total_reconfigs == off._port.total_reconfigs
        assert _row_digest(on.trace) == _row_digest(off.trace)
        for mine, live in zip(on.results(), off.results()):
            assert mine == live
        for app_on, app_off in zip(on.retired, off.retired):
            assert app_on.first_item_start_ms == app_off.first_item_start_ms
            assert app_on.last_item_done_ms == app_off.last_item_done_ms
            assert app_on.reconfig_busy_ms == app_off.reconfig_busy_ms
            for task_id in app_on.tasks:
                assert (
                    app_on.tasks[task_id].__dict__
                    == app_off.tasks[task_id].__dict__
                )

    def test_fault_injection_forces_total_fallback(self):
        """A fault injector makes the context non-reproducible: the gate
        must refuse every arrival (no hits, no recordings) and the run
        stays digest-identical."""
        from repro.faults.injector import FaultInjector
        from repro.workload.scenarios import chaos_scenario

        fault_config = chaos_scenario("mixed").fault_config(0.2, seed=11)

        def run(replay: bool) -> Hypervisor:
            hv = Hypervisor(
                make_scheduler("nimblock"),
                faults=FaultInjector(fault_config),
            )
            if replay:
                hv._replay = ReplayCache(
                    hv,
                    scheduler_factory=lambda: make_scheduler("nimblock"),
                )
            for spec in _sparse_specs():
                hv.submit(spec.to_request())
            hv.run()
            return hv

        on = run(True)
        off = run(False)
        assert on._replay.hits == 0
        assert on._replay.recordings == 0
        assert on._replay.misses > 0
        assert _row_digest(on.trace) == _row_digest(off.trace)

    def test_observe_counters_exported(self):
        """observe_run exposes the replay hit/miss counters."""
        from repro.observe.instrument import observe_run

        hv = _bare_run(True)
        snapshot = observe_run(hv).snapshot()
        counters = {
            name: sample["value"]
            for name, sample in snapshot["counters"].items()
        }
        assert counters["nimblock_replay_hits_total"] > 0
        assert (
            counters["nimblock_replay_hits_total"]
            + counters["nimblock_replay_misses_total"]
            == len(hv.apps)
        )


class TestClusterEquivalence:
    def test_cluster_report_identical_with_and_without_replay(self):
        from repro.facade import fleet

        on = fleet(2, num_events=16, jobs=1, seed=5, replay=True)
        off = fleet(2, num_events=16, jobs=1, seed=5, replay=False)
        assert json.dumps(on.to_dict(), sort_keys=True) == json.dumps(
            off.to_dict(), sort_keys=True
        )

    def test_chaos_cluster_identical(self):
        from repro.facade import fleet

        on = fleet(2, num_events=16, jobs=1, seed=5, fault_rate=0.1,
                   replay=True)
        off = fleet(2, num_events=16, jobs=1, seed=5, fault_rate=0.1,
                    replay=False)
        assert json.dumps(on.to_dict(), sort_keys=True) == json.dumps(
            off.to_dict(), sort_keys=True
        )
