"""Tests for token accounting — Algorithm 1 (repro.core.tokens)."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.core.tokens import TokenAccounting
from tests.test_application_state import make_app


@pytest.fixture
def accounting():
    # alpha pinned to 1 so the accumulation arithmetic is easy to read;
    # the platform default is smaller (see SystemConfig.token_alpha).
    return TokenAccounting(SystemConfig(token_alpha=1.0))


class TestDegradation:
    def test_fresh_app_has_unit_degradation(self, accounting):
        app = make_app(arrival=100.0)
        assert accounting.degradation(app, 100.0) == 1.0

    def test_degradation_grows_with_waiting(self, accounting):
        app = make_app(arrival=0.0)  # estimate 100 ms
        assert accounting.degradation(app, 100.0) == 2.0
        assert accounting.degradation(app, 300.0) == 4.0

    def test_long_apps_degrade_slower(self, accounting):
        short = make_app(arrival=0.0)
        short.latency_estimate_ms = 10.0
        long_ = make_app(arrival=0.0, app_id=1)
        long_.latency_estimate_ms = 1000.0
        assert accounting.degradation(short, 100.0) > accounting.degradation(
            long_, 100.0
        )


class TestAccumulation:
    def test_initial_token_is_priority(self):
        assert make_app(priority=3).token == 3.0

    def test_accumulate_adds_alpha_priority_degradation(self, accounting):
        app = make_app(priority=3, arrival=0.0)
        accounting.accumulate([app], now=0.0)
        # Sole app: degradation_norm = 1 -> token += alpha x priority.
        assert app.token == 3.0 + 3.0

    def test_most_degraded_app_normalizes_to_one(self, accounting):
        fresh = make_app(priority=1, arrival=100.0, app_id=0)
        stale = make_app(priority=1, arrival=0.0, app_id=1)
        accounting.accumulate([fresh, stale], now=100.0)
        assert stale.token == pytest.approx(2.0)  # 1 + 1 x 1 x 1.0
        assert 1.0 < fresh.token < 2.0

    def test_priority_scales_accumulation(self, accounting):
        low = make_app(priority=1, arrival=0.0, app_id=0)
        high = make_app(priority=9, arrival=0.0, app_id=1)
        accounting.accumulate([low, high], now=50.0)
        assert (high.token - 9.0) == pytest.approx(9 * (low.token - 1.0))

    def test_alpha_scales_accumulation(self):
        fast = TokenAccounting(SystemConfig(token_alpha=2.0))
        app = make_app(priority=1)
        fast.accumulate([app], now=0.0)
        assert app.token == 3.0

    def test_empty_queue_is_noop(self, accounting):
        accounting.accumulate([], now=10.0)


class TestThresholdAndCandidates:
    def test_threshold_floors_max_token(self, accounting):
        a = make_app(app_id=0)
        b = make_app(app_id=1)
        a.token = 8.9
        b.token = 2.0
        assert accounting.threshold([a, b]) == 3.0

    def test_threshold_of_empty_queue(self, accounting):
        assert accounting.threshold([]) == 0.0

    def test_candidates_meet_threshold_inclusively(self, accounting):
        a = make_app(app_id=0)
        b = make_app(app_id=1)
        c = make_app(app_id=2)
        a.token = 9.0
        b.token = 9.5
        c.token = 8.9
        chosen = accounting.candidates([a, b, c])
        assert {x.app_id for x in chosen} == {0, 1}

    def test_fresh_equal_priority_apps_all_candidates(self, accounting):
        apps = [make_app(priority=1, app_id=i) for i in range(3)]
        assert len(accounting.candidates(apps)) == 3

    def test_high_priority_arrival_excludes_low(self, accounting):
        low = make_app(priority=1, app_id=0)
        high = make_app(priority=9, app_id=1)
        chosen = accounting.candidates([low, high])
        assert [x.app_id for x in chosen] == [1]

    def test_low_priority_eventually_joins(self, accounting):
        low = make_app(priority=1, arrival=0.0, app_id=0)
        high = make_app(priority=9, arrival=0.0, app_id=1)
        for tick in range(1, 50):
            accounting.accumulate([low, high], now=tick * 400.0)
            if low in accounting.candidates([low, high]):
                break
        else:
            pytest.fail("low-priority app never became a candidate")

    def test_candidates_sorted_by_age(self, accounting):
        young = make_app(arrival=100.0, app_id=0)
        old = make_app(arrival=0.0, app_id=1)
        young.token = old.token = 5.0
        chosen = accounting.candidates([young, old])
        assert [x.app_id for x in chosen] == [1, 0]

    def test_snapshot(self, accounting):
        a = make_app(app_id=3)
        a.token = 4.5
        assert accounting.snapshot([a]) == {3: 4.5}
