"""Tests for the extension schedulers (EDF and DML-static)."""

from __future__ import annotations

import pytest

from repro.errors import SchedulerError
from repro.schedulers.dml_static import DMLStaticScheduler
from repro.schedulers.edf import EDFScheduler
from repro.schedulers.registry import EXTENSION_SCHEDULERS, make_scheduler
from repro.sim.trace import TraceKind
from repro.taskgraph.builders import chain_graph
from tests.conftest import request, run_named, run_workload, small_config


class TestRegistry:
    def test_extension_names_registered(self):
        for name in EXTENSION_SCHEDULERS:
            assert make_scheduler(name).name == name


class TestEDF:
    def test_rejects_bad_slack(self):
        with pytest.raises(SchedulerError, match="slack_factor"):
            EDFScheduler(slack_factor=0.0)

    def test_earliest_deadline_runs_first(self):
        # Same arrival; the short app has the earlier internal deadline.
        long_g = chain_graph("long", [500.0])
        short_g = chain_graph("short", [50.0])
        config = small_config(num_slots=1)
        hv, _ = run_workload(
            EDFScheduler(),
            [
                request(long_g, batch_size=5, arrival_ms=0.0),
                request(short_g, batch_size=1, arrival_ms=0.0),
            ],
            config,
        )
        first = hv.trace.first(TraceKind.ITEM_START)
        assert first.app_id == 1

    def test_arrival_order_breaks_deadline_ties(self):
        g = chain_graph("g", [100.0])
        config = small_config(num_slots=1)
        hv, results = run_workload(
            EDFScheduler(),
            [request(g, arrival_ms=0.0), request(g, arrival_ms=0.0)],
            config,
        )
        assert results[0].retire_ms < results[1].retire_ms

    def test_completes_mixed_workload(self):
        g1 = chain_graph("g1", [50.0, 50.0])
        g2 = chain_graph("g2", [200.0])
        _, results = run_named(
            "edf",
            [request(g1, batch_size=3), request(g2, arrival_ms=20.0)],
            small_config(num_slots=2),
        )
        assert len(results) == 2


class TestDMLStatic:
    def test_budget_fixed_at_goal_number(self):
        graph = chain_graph("c", [100.0, 100.0, 100.0])
        policy = DMLStaticScheduler()
        hv, _ = run_workload(
            policy, [request(graph, batch_size=6)],
            small_config(num_slots=4),
        )
        used = {e.slot for e in hv.trace.of_kind(TraceKind.TASK_CONFIG_START)}
        # The static budget (>= 2 for a batched chain) was exploited...
        assert len(used) >= 2
        # ...and never exceeded the task count.
        assert len(used) <= 3

    def test_pipelines_within_budget(self):
        graph = chain_graph("c", [100.0, 100.0])
        _, results = run_named(
            "dml_static", [request(graph, batch_size=10)],
            small_config(num_slots=2),
        )
        # Pipelined two-task chain: ~(batch + 1) x 100 + config, far below
        # the bulk 2 x batch x 100.
        assert results[0].response_ms < 80.0 + 2 * 10 * 100.0

    def test_never_preempts(self):
        hog = chain_graph("hog", [100.0, 100.0])
        vip = chain_graph("vip", [100.0])
        hv, _ = run_named(
            "dml_static",
            [
                request(hog, batch_size=20, priority=1, arrival_ms=0.0),
                request(vip, batch_size=1, priority=9, arrival_ms=500.0),
            ],
            small_config(num_slots=2),
        )
        assert hv.trace.of_kind(TraceKind.TASK_PREEMPTED) == []

    def test_no_reallocation_under_contention(self):
        # Two chain apps, two slots: static budgets are 2 each, but the
        # first app claims both slots and is never rolled back; the second
        # app only starts when the first finishes a task.
        graph = chain_graph("c", [200.0, 200.0])
        config = small_config(num_slots=2)
        hv, results = run_named(
            "dml_static",
            [
                request(graph, batch_size=10, arrival_ms=0.0),
                request(graph, batch_size=1, arrival_ms=100.0),
            ],
            config,
        )
        assert results[1].first_start_ms >= results[0].first_start_ms
        assert len(results) == 2
