"""Tests for the overload-protection layer (``repro.admission``).

Covers the policy catalogue and its validation, the byte-identity of the
default ``unbounded`` policy against the golden sha256 pins, the
behavioural contracts of reject/shed/degrade, the watchdog (including the
no-double-fire interplay with the PR-1 fault stall-breaker), serial vs
parallel determinism of the overload study, and the CLI exit-code
mapping for robustness failures.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.admission import (
    ADMISSION_POLICIES,
    AdmissionController,
    AdmissionPolicy,
    DegradePolicy,
    RejectPolicy,
    ShedPolicy,
    Watchdog,
    WatchdogConfig,
    make_admission_policy,
)
from repro.config import SystemConfig
from repro.errors import AdmissionError, InvariantViolation
from repro.experiments import ext_overload
from repro.experiments.runner import ExperimentSettings
from repro.faults.injector import FaultInjector
from repro.hypervisor.hypervisor import Hypervisor
from repro.metrics.utilization import board_utilization
from repro.schedulers.registry import make_scheduler
from repro.sim.trace import TraceKind
from repro.sim.trace_export import trace_to_dict
from repro.workload.generator import EventGenerator
from repro.workload.scenarios import chaos_scenario

from tests.test_perf_equivalence import (
    PINNED_CHAOS_RUNS,
    PINNED_RUNS,
    pinned_sequence,
)


def overload_burst(seed=1, num_events=30, rate=4.0):
    """A deep 4x burst on the study's tuned pool (fast test scale)."""
    return ext_overload.study_sequence(
        ext_overload.OVERLOAD_WORKLOAD, seed, num_events, rate
    )


def run_with(scheduler, sequence, policy, seed=1, watchdog=None):
    controller = AdmissionController(policy, seed=seed)
    hv = Hypervisor(
        make_scheduler(scheduler), admission=controller, watchdog=watchdog
    )
    for request in sequence.to_requests():
        hv.submit(request)
    hv.run()
    return hv, controller


# ---------------------------------------------------------------------------
# Policy catalogue
# ---------------------------------------------------------------------------
class TestPolicies:
    def test_registry_names_and_order(self):
        assert ADMISSION_POLICIES == ("unbounded", "reject", "shed", "degrade")

    @pytest.mark.parametrize("name", ADMISSION_POLICIES)
    def test_make_by_name(self, name):
        policy = make_admission_policy(name)
        assert policy.kind == name
        policy.validate()

    def test_unknown_policy_rejected(self):
        with pytest.raises(AdmissionError, match="unknown admission policy"):
            make_admission_policy("yolo")

    def test_unknown_knob_rejected(self):
        with pytest.raises(AdmissionError, match="no knobs"):
            make_admission_policy("reject", queue_cap=3)

    def test_knob_overrides(self):
        policy = make_admission_policy("reject", queue_capacity=4)
        assert policy.queue_capacity == 4

    @pytest.mark.parametrize("bad", [
        dict(queue_capacity=0),
        dict(max_retries=-1),
        dict(backoff_base_ms=0.0),
        dict(backoff_factor=0.5),
        dict(jitter_frac=1.0),
    ])
    def test_reject_validation(self, bad):
        with pytest.raises(AdmissionError):
            make_admission_policy("reject", **bad)

    @pytest.mark.parametrize("bad", [
        dict(queue_capacity=0),
        dict(low_watermark=0),
        dict(queue_capacity=4, low_watermark=9),
    ])
    def test_shed_validation(self, bad):
        with pytest.raises(AdmissionError):
            make_admission_policy("shed", **bad)

    @pytest.mark.parametrize("bad", [
        dict(high_watermark=0),
        dict(low_watermark=0),
        dict(high_watermark=4, low_watermark=9),
        dict(wait_high_ms=0.0),
        dict(slot_cap=0),
    ])
    def test_degrade_validation(self, bad):
        with pytest.raises(AdmissionError):
            make_admission_policy("degrade", **bad)

    def test_backoff_is_exponential_and_capped(self):
        policy = RejectPolicy(
            backoff_base_ms=100.0, backoff_factor=2.0, backoff_cap_ms=350.0
        )
        assert policy.backoff_ms(1) == 100.0
        assert policy.backoff_ms(2) == 200.0
        assert policy.backoff_ms(3) == 350.0  # capped, not 400
        assert policy.backoff_ms(9) == 350.0

    def test_unbounded_has_no_watermarks(self):
        assert AdmissionPolicy().watermarks() == (None, None)
        assert ShedPolicy(queue_capacity=8).watermarks() == (8, 6)

    def test_controller_single_attach(self):
        controller = AdmissionController("unbounded")
        Hypervisor(make_scheduler("fcfs"), admission=controller)
        with pytest.raises(AdmissionError, match="already attached"):
            Hypervisor(make_scheduler("fcfs"), admission=controller)


# ---------------------------------------------------------------------------
# Golden-pin byte identity of the default path
# ---------------------------------------------------------------------------
def _pin_digest(name, **hypervisor_kwargs):
    """The exact digest recipe of tests/test_perf_equivalence.py."""
    hv = Hypervisor(make_scheduler(name), **hypervisor_kwargs)
    for request in pinned_sequence().to_requests():
        hv.submit(request)
    hv.run()
    util = board_utilization(hv.trace, hv.config.num_slots)
    blob = json.dumps(
        {
            "trace": trace_to_dict(hv.trace, label=name),
            "responses": [round(r.response_ms, 6) for r in hv.results()],
            "util": [
                round(util.compute_fraction, 9),
                round(util.reconfig_fraction, 9),
            ],
            "reconfig_busy": round(hv.trace.reconfig_busy_ms(), 6),
            "run_busy": round(hv.trace.run_busy_ms(), 6),
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


class TestUnboundedEquivalence:
    """unbounded + watchdog attached == no protection at all, byte for byte."""

    @pytest.mark.parametrize("name", sorted(PINNED_RUNS))
    def test_unbounded_matches_golden_pin(self, name):
        digest = _pin_digest(
            name,
            admission=AdmissionController("unbounded"),
            watchdog=Watchdog(),
        )
        assert digest == PINNED_RUNS[name], (
            f"attaching an unbounded controller changed {name!r}'s trace"
        )

    def test_unbounded_chaos_matches_golden_pin(self):
        fault_config = chaos_scenario("mixed").fault_config(
            fault_rate=1.0, seed=1234
        )
        hv = Hypervisor(
            make_scheduler("nimblock"),
            config=SystemConfig(),
            faults=FaultInjector(fault_config),
            admission=AdmissionController("unbounded"),
            watchdog=Watchdog(),
        )
        for request in pinned_sequence().to_requests():
            hv.submit(request)
        hv.run()
        blob = json.dumps(
            {
                "trace": trace_to_dict(hv.trace, label="nimblock"),
                "responses": [
                    round(r.response_ms, 6) for r in hv.results()
                ],
                "faults": hv.fault_stats.total_faults,
            },
            sort_keys=True,
        )
        digest = hashlib.sha256(blob.encode()).hexdigest()
        assert digest == PINNED_CHAOS_RUNS["nimblock"]

    def test_unbounded_emits_no_admission_events(self):
        hv, controller = run_with("nimblock", pinned_sequence(), "unbounded")
        for kind in (
            TraceKind.APP_REJECTED, TraceKind.APP_SHED,
            TraceKind.OVERLOAD_ENTER, TraceKind.OVERLOAD_EXIT,
            TraceKind.WATCHDOG_STALL, TraceKind.WATCHDOG_KICK,
        ):
            assert hv.trace.count(kind) == 0
        assert controller.stats.admission_ratio == 1.0


# ---------------------------------------------------------------------------
# Reject policy
# ---------------------------------------------------------------------------
class TestRejectPolicy:
    def run_bounded(self, seed=1):
        policy = make_admission_policy(
            "reject", queue_capacity=3, max_retries=2,
            backoff_base_ms=50.0, backoff_cap_ms=400.0,
        )
        return run_with("fcfs", overload_burst(seed=seed), policy, seed=seed)

    def test_bounded_queue_drops_and_accounts(self):
        hv, controller = self.run_bounded()
        stats = controller.stats
        assert stats.submitted == 30
        assert stats.dropped > 0
        assert stats.admitted + stats.dropped == stats.submitted
        assert stats.rejections >= stats.dropped
        assert 0.0 < stats.admission_ratio < 1.0
        # Every admitted app retires; dropped apps never enter the system.
        assert hv.all_retired
        assert len(hv.results()) == stats.admitted
        assert sorted(stats.dropped_app_ids) == stats.dropped_app_ids

    def test_rejection_trace_detail_semantics(self):
        hv, controller = self.run_bounded()
        rejected = [
            e for e in hv.trace.events if e.kind is TraceKind.APP_REJECTED
        ]
        assert len(rejected) == controller.stats.rejections
        finals = [e for e in rejected if e.detail < 0]
        retries = [e for e in rejected if e.detail > 0]
        assert len(finals) == controller.stats.dropped
        assert len(finals) + len(retries) == len(rejected)
        # The final rejection records the exhausted attempt count.
        assert all(-e.detail > 2 for e in finals)

    def test_reject_runs_are_deterministic(self):
        first_hv, first = self.run_bounded()
        second_hv, second = self.run_bounded()
        assert first.stats == second.stats
        assert len(first_hv.trace) == len(second_hv.trace)

    def test_seed_changes_backoff_jitter(self):
        policy = make_admission_policy("reject", queue_capacity=3)
        a = AdmissionController(policy, seed=1)._jitter(app_id=7, attempt=2)
        b = AdmissionController(policy, seed=2)._jitter(app_id=7, attempt=2)
        assert a != b
        assert abs(a) <= policy.jitter_frac


# ---------------------------------------------------------------------------
# Shed policy
# ---------------------------------------------------------------------------
class TestShedPolicy:
    def test_sheds_only_zero_progress_apps(self):
        policy = make_admission_policy("shed", queue_capacity=6)
        hv, controller = run_with("fcfs", overload_burst(), policy)
        assert controller.stats.shed > 0
        assert len(hv.shed) == controller.stats.shed
        assert hv.trace.count(TraceKind.APP_SHED) == controller.stats.shed
        for app in hv.shed:
            assert app.slots_used == 0
            assert app.first_item_start_ms is None
        # Shed apps never retire but the run still drains completely.
        assert hv.all_retired
        assert len(hv.retired) + len(hv.shed) == len(hv.apps)
        assert len(hv.results()) == len(hv.retired)

    def test_shedding_evicts_lowest_priority_first(self):
        policy = make_admission_policy("shed", queue_capacity=6)
        hv, _ = run_with("fcfs", overload_burst(), policy)
        shed_events = [
            e for e in hv.trace.events if e.kind is TraceKind.APP_SHED
        ]
        assert shed_events
        # All evictions of one decision pass share a timestamp; within a
        # pass the recorded priorities (event detail) never decrease —
        # the lowest class is always sacrificed first.
        by_pass = {}
        for event in shed_events:
            by_pass.setdefault(event.time, []).append(event.detail)
        assert any(len(batch) > 1 for batch in by_pass.values())
        for batch in by_pass.values():
            assert batch == sorted(batch)
        # High-priority work still completes under sustained shedding.
        assert any(app.priority == 9 for app in hv.retired)

    def test_overload_windows_open_and_close(self):
        policy = make_admission_policy("shed", queue_capacity=6)
        hv, controller = run_with("fcfs", overload_burst(), policy)
        enters = hv.trace.count(TraceKind.OVERLOAD_ENTER)
        exits = hv.trace.count(TraceKind.OVERLOAD_EXIT)
        assert enters >= 1
        assert enters - exits in (0, 1)  # final window may stay open
        assert controller.stats.overload_windows == exits
        assert controller.overload_total_ms(hv.engine.now) > 0.0


# ---------------------------------------------------------------------------
# Degrade policy
# ---------------------------------------------------------------------------
class TestDegradePolicy:
    def test_degrade_serves_everything(self):
        hv, controller = run_with("fcfs", overload_burst(), "degrade")
        # Degradation throttles service instead of refusing it: every
        # application retires, nothing is dropped or shed.
        assert hv.all_retired
        assert len(hv.retired) == len(hv.apps)
        assert controller.stats.dropped == 0
        assert controller.stats.shed == 0
        assert hv.trace.count(TraceKind.OVERLOAD_ENTER) >= 1

    def test_levers_only_active_during_overload(self):
        controller = AdmissionController("degrade")
        assert controller.slot_cap() is None
        assert controller.pipelining_allowed()
        controller._overload_since = 100.0
        assert controller.slot_cap() == DegradePolicy().slot_cap
        assert not controller.pipelining_allowed()

    def test_filter_candidates_brownout_reorders_without_hiding(self):
        class App:
            def __init__(self, app_id, priority):
                self.app_id = app_id
                self.priority = priority
                self.age_key = (float(app_id), app_id)

        apps = [App(0, 1), App(1, 9), App(2, 3), App(3, 9), App(4, 1)]
        controller = AdmissionController("degrade")
        # Outside overload: the exact input object, zero copies.
        assert controller.filter_candidates(apps) is apps
        controller._overload_since = 0.0
        view = controller.filter_candidates(apps)
        assert [a.app_id for a in view] == [1, 3, 2, 0, 4]
        assert set(view) == set(apps)  # nothing hidden, nothing added
        # Non-degrade policies never reorder, even inside overload.
        shed = AdmissionController("shed")
        shed._overload_since = 0.0
        assert shed.filter_candidates(apps) is apps


# ---------------------------------------------------------------------------
# Watchdog
# ---------------------------------------------------------------------------
class TestWatchdog:
    @pytest.mark.parametrize("bad", [
        dict(stall_passes=0),
        dict(starvation_passes=0),
        dict(cooldown_passes=-1),
    ])
    def test_config_validation(self, bad):
        with pytest.raises(AdmissionError):
            Watchdog(WatchdogConfig(**bad))

    def test_watchdog_single_attach(self):
        watchdog = Watchdog()
        Hypervisor(make_scheduler("fcfs"), watchdog=watchdog)
        with pytest.raises(AdmissionError, match="already attached"):
            Hypervisor(make_scheduler("fcfs"), watchdog=watchdog)

    def test_healthy_run_never_fires(self):
        watchdog = Watchdog()
        hv, _ = run_with(
            "nimblock", pinned_sequence(), "unbounded", watchdog=watchdog
        )
        assert watchdog.stalls_detected == 0
        assert watchdog.starvation_boosts == 0
        assert hv.trace.count(TraceKind.WATCHDOG_STALL) == 0
        assert hv.trace.count(TraceKind.WATCHDOG_KICK) == 0


class TestWatchdogFaultInterplay:
    """The watchdog and the PR-1 fault stall-breaker never double-fire."""

    def _wedgeable(self, monkeypatch):
        watchdog = Watchdog(WatchdogConfig(stall_passes=5, cooldown_passes=3))
        hv = Hypervisor(make_scheduler("nimblock"), watchdog=watchdog)
        monkeypatch.setattr(Watchdog, "_wedged", staticmethod(lambda hv: True))
        detaches = []
        monkeypatch.setattr(
            hv, "_detach_idle_residents",
            lambda now: detaches.append(now) or 1,
        )
        hv.scheduler_passes = 100
        return hv, watchdog, detaches

    def test_watchdog_stands_down_when_breaker_owned_the_pass(
        self, monkeypatch
    ):
        hv, watchdog, detaches = self._wedgeable(monkeypatch)
        watchdog._stalled_passes = 5
        hv._last_stall_break_pass = hv.scheduler_passes
        watchdog._check_stall(hv, now=1000.0)
        assert watchdog.stalls_detected == 0
        assert detaches == []
        assert hv.trace.count(TraceKind.WATCHDOG_STALL) == 0
        # The stand-down still resets the stall counter: the breaker's
        # recovery counts as progress.
        assert watchdog._stalled_passes == 0

    def test_watchdog_fires_when_breaker_is_idle(self, monkeypatch):
        hv, watchdog, detaches = self._wedgeable(monkeypatch)
        watchdog._stalled_passes = 5
        hv._last_stall_break_pass = hv.scheduler_passes - 1
        watchdog._check_stall(hv, now=1000.0)
        assert watchdog.stalls_detected == 1
        assert watchdog.stall_kicks == 1
        assert len(detaches) == 1
        assert hv.trace.count(TraceKind.WATCHDOG_STALL) == 1
        assert hv.trace.count(TraceKind.WATCHDOG_KICK) == 1
        # Cooldown: an immediately re-primed stall must not re-kick.
        watchdog._stalled_passes = 5
        watchdog._check_stall(hv, now=1001.0)
        assert watchdog.stall_kicks == 1

    def test_full_rate_chaos_with_watchdog_stays_pinned(self):
        # Integration form of the same claim: under full-rate mixed chaos
        # the breaker handles every wedge in-pass, the watchdog sees its
        # preemptions as progress, and the trace digest is byte-identical
        # to the watchdog-less chaos pin.
        fault_config = chaos_scenario("mixed").fault_config(
            fault_rate=1.0, seed=1234
        )
        hv = Hypervisor(
            make_scheduler("rr"),
            config=SystemConfig(),
            faults=FaultInjector(fault_config),
            watchdog=Watchdog(),
        )
        for request in pinned_sequence().to_requests():
            hv.submit(request)
        hv.run()
        blob = json.dumps(
            {
                "trace": trace_to_dict(hv.trace, label="rr"),
                "responses": [
                    round(r.response_ms, 6) for r in hv.results()
                ],
                "faults": hv.fault_stats.total_faults,
            },
            sort_keys=True,
        )
        digest = hashlib.sha256(blob.encode()).hexdigest()
        assert digest == PINNED_CHAOS_RUNS["rr"]


# ---------------------------------------------------------------------------
# Overload study: serial vs parallel determinism
# ---------------------------------------------------------------------------
class TestOverloadStudyDeterminism:
    def test_serial_and_parallel_results_are_identical(self):
        settings = ExperimentSettings(num_sequences=2, num_events=3)
        kwargs = dict(rate_multipliers=(1.0, 4.0))
        serial = ext_overload.run(settings, jobs=1, **kwargs)
        parallel = ext_overload.run(settings, jobs=2, **kwargs)
        # repr-compare: dataclass dicts are built in identical order and
        # NaN cells (repr 'nan') compare equal textually where == cannot.
        assert repr(serial) == repr(parallel)

    def test_protection_curve_shape(self):
        # The burst must be deep enough for queueing (not service time)
        # to dominate the unbounded tail: 64 events per sequence.
        settings = ExperimentSettings(num_sequences=1, num_events=8)
        result = ext_overload.run(
            settings, jobs=2, rate_multipliers=(1.0, 4.0),
            policies=("unbounded", "shed"),
        )
        assert result.scheduler == "fcfs"
        assert result.high_priority == 9
        for policy in ("unbounded", "shed"):
            curve = result.protection_curve(policy)
            assert curve[0] == pytest.approx(1.0)
        # The bounded policy holds the high-priority tail closer to its
        # uncongested value than the unbounded queue does.
        assert (
            result.protection[("shed", 4.0)]
            < result.protection[("unbounded", 4.0)]
        )
        assert result.shed[("shed", 4.0)] > 0
        assert result.shed[("unbounded", 4.0)] == 0

    def test_format_result_mentions_every_policy(self):
        settings = ExperimentSettings(num_sequences=1, num_events=3)
        result = ext_overload.run(settings, rate_multipliers=(1.0, 2.0))
        text = ext_overload.format_result(result)
        for policy in ADMISSION_POLICIES:
            assert policy in text
        assert "protection ratio" in text


# ---------------------------------------------------------------------------
# CLI exit-code mapping
# ---------------------------------------------------------------------------
class TestCliExitCodes:
    def test_admission_error_exits_usage(self, monkeypatch, capsys):
        from repro import cli
        from repro.experiments import ext_overload as mod

        def boom(**kwargs):
            raise AdmissionError("queue_capacity must be >= 1, got 0")

        monkeypatch.setattr(mod, "overload_report", boom)
        assert cli.main(["overload"]) == cli.EXIT_USAGE
        assert "queue_capacity" in capsys.readouterr().err

    def test_invariant_violation_exits_usage(self, monkeypatch, capsys):
        from repro import cli
        from repro.experiments import ext_overload as mod

        def boom(**kwargs):
            raise InvariantViolation("slot-mutual-exclusion", "boom")

        monkeypatch.setattr(mod, "overload_report", boom)
        assert cli.main(["overload"]) == cli.EXIT_USAGE
        assert "slot-mutual-exclusion" in capsys.readouterr().err
