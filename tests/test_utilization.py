"""Tests for utilization accounting (repro.metrics.utilization)."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.metrics.utilization import board_utilization
from repro.schedulers.registry import make_scheduler
from repro.sim.trace import Trace
from repro.taskgraph.builders import chain_graph
from tests.conftest import request, run_workload, small_config


class TestBoardUtilization:
    def _run(self, scheduler="baseline", slots=2, batch=2):
        graph = chain_graph("c", [100.0, 100.0])
        hv, _ = run_workload(
            make_scheduler(scheduler), [request(graph, batch_size=batch)],
            small_config(num_slots=slots),
        )
        return hv

    def test_shares_sum_to_at_most_one(self):
        hv = self._run()
        report = board_utilization(hv.trace, 2)
        total = (
            report.compute_fraction + report.reconfig_fraction
            + report.idle_resident_fraction + report.empty_fraction
        )
        assert total == pytest.approx(1.0)

    def test_hand_computed_shares(self):
        # Baseline, chain2 batch2, 2 slots: window 0..480 (arrival to
        # retire); compute = 400 ms; reconfig = 160; idle-resident: t1
        # resident 160-280 = 120 ms. Denominator = 480 x 2 = 960.
        hv = self._run()
        report = board_utilization(hv.trace, 2)
        assert report.window_ms == 480.0
        assert report.compute_fraction == pytest.approx(400 / 960)
        assert report.reconfig_fraction == pytest.approx(160 / 960)
        assert report.idle_resident_fraction == pytest.approx(120 / 960)

    def test_busy_fraction(self):
        hv = self._run()
        report = board_utilization(hv.trace, 2)
        assert report.busy_fraction == pytest.approx(560 / 960)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            board_utilization(Trace(), 2)
        hv = self._run()
        with pytest.raises(ExperimentError):
            board_utilization(hv.trace, 0)

    def test_more_slots_dilute_utilization(self):
        two = board_utilization(self._run(slots=2).trace, 2)
        four = board_utilization(self._run(slots=4).trace, 4)
        assert four.compute_fraction < two.compute_fraction
