"""Tests for the benchmark catalog (repro.apps.catalog) — Table 2 fidelity."""

from __future__ import annotations

import pytest

from repro.apps.catalog import (
    ALEXNET_STAGE_LATENCIES_MS,
    ALEXNET_WIDTHS,
    BENCHMARK_NAMES,
    benchmark_catalog,
    get_benchmark,
)
from repro.errors import WorkloadError

#: Table 2 of the paper.
PAPER_SHAPES = {
    "lenet": (3, 2),
    "alexnet": (38, 184),
    "imgc": (6, 5),
    "of": (9, 8),
    "3dr": (3, 2),
    "dr": (3, 2),
}

#: Table 3 execution times (s) under the batch-5 baseline.
PAPER_EXEC_S = {
    "lenet": 0.73,
    "alexnet": 65.44,
    "imgc": 0.56,
    "of": 22.91,
    "3dr": 1.55,
    "dr": 984.23,
}


class TestTable2Shapes:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_task_and_edge_counts_match_paper(self, name):
        app = get_benchmark(name)
        assert (app.num_tasks, app.num_edges) == PAPER_SHAPES[name]

    def test_alexnet_layer_structure(self):
        assert sum(ALEXNET_WIDTHS) == 38
        dense_edges = sum(
            a * b for a, b in zip(ALEXNET_WIDTHS, ALEXNET_WIDTHS[1:])
        )
        assert dense_edges == 184

    def test_alexnet_same_stage_tasks_identical(self):
        graph = get_benchmark("alexnet").graph
        by_stage = {}
        for task_id in graph.topological_order:
            spec = graph.task(task_id)
            by_stage.setdefault(spec.stage, set()).add(spec.latency_ms)
        assert all(len(lats) == 1 for lats in by_stage.values())


class TestLatencyCalibration:
    @pytest.mark.parametrize("name", ["lenet", "imgc", "of", "3dr", "dr"])
    def test_chain_batch5_execution_matches_table3(self, name):
        # For chains, batch-5 baseline execution = 5 x sum(latencies).
        graph = get_benchmark(name).graph
        exec_s = 5 * graph.total_latency_ms() / 1000.0
        assert exec_s == pytest.approx(PAPER_EXEC_S[name], rel=0.01)

    def test_alexnet_batch5_execution_matches_table3(self):
        # Stages run their parallel tasks simultaneously, so execution is
        # 5 x sum of per-stage latencies.
        exec_s = 5 * sum(ALEXNET_STAGE_LATENCIES_MS) / 1000.0
        assert exec_s == pytest.approx(PAPER_EXEC_S["alexnet"], rel=0.01)

    def test_dr_is_the_long_running_outlier(self):
        # Digit recognition's critical path dwarfs every other benchmark's
        # (984 s vs 65 s execution in Table 3).
        dr = get_benchmark("dr").graph.critical_path_ms()
        others = max(
            get_benchmark(n).graph.critical_path_ms()
            for n in BENCHMARK_NAMES if n != "dr"
        )
        assert dr > 10 * others


class TestCatalogAccess:
    def test_all_names_resolvable(self):
        for name in BENCHMARK_NAMES:
            assert get_benchmark(name).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(WorkloadError, match="unknown benchmark"):
            get_benchmark("resnet")

    def test_catalog_returns_fresh_dict(self):
        catalog = benchmark_catalog()
        catalog.pop("lenet")
        assert "lenet" in benchmark_catalog()

    def test_short_names_unique(self):
        shorts = [get_benchmark(n).short_name for n in BENCHMARK_NAMES]
        assert len(set(shorts)) == len(shorts)

    def test_sources_attributed(self):
        assert get_benchmark("of").source == "rosetta"
        assert get_benchmark("alexnet").source == "custom"
