"""Tests for the observability layer (repro.observe)."""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.errors import ExperimentError
from repro.observe.aggregate import collect_metrics, observed_run
from repro.observe.exporters import (
    save_chrome_trace,
    snapshot_to_prometheus,
    trace_to_chrome,
    trace_to_jsonl,
    validate_chrome_trace,
)
from repro.observe.instrument import Instrumentation, snapshot_run
from repro.observe.metrics import (
    Counter,
    Histogram,
    MetricError,
    MetricsRegistry,
    merge_snapshots,
    quantile_from_histogram,
    to_prometheus,
)
from repro.observe.spans import (
    CATEGORY_COMPUTE,
    CATEGORY_DPR,
    CATEGORY_FAULT,
    CATEGORY_WAIT,
    build_spans,
    config_port_busy_ms,
    expected_span_count,
    spans_by_category,
)
from repro.sim.trace import Trace, TraceKind
from repro.sim.trace_export import load_trace, save_trace, trace_from_dict, trace_to_dict
from repro.workload.scenarios import STRESS, chaos_scenario, scenario_sequence


def _chaos_run(rate=0.05, seed=1, num_events=12, scheduler="nimblock"):
    """One deterministic chaos run exercising every span pairing rule."""
    sequence = scenario_sequence(STRESS, seed, num_events)
    faults = chaos_scenario("mixed").fault_config(rate, seed=seed)
    return observed_run(scheduler, sequence, faults)


@pytest.fixture(scope="module")
def chaos():
    """(hypervisor, observer) of the canonical chaos run."""
    return _chaos_run()


class TestSpanBuilder:
    def test_span_count_matches_expected(self, chaos):
        hypervisor, _ = chaos
        spans = build_spans(hypervisor.trace)
        assert len(spans) == expected_span_count(hypervisor.trace)

    def test_chaos_trace_exercises_every_category(self, chaos):
        hypervisor, _ = chaos
        trace = hypervisor.trace
        # The fixture must genuinely contain preemptions and relocations.
        assert len(trace.of_kind(TraceKind.TASK_PREEMPTED)) > 0
        assert len(trace.of_kind(TraceKind.TASK_RELOCATED)) > 0
        grouped = spans_by_category(build_spans(trace))
        for category in (CATEGORY_DPR, CATEGORY_COMPUTE,
                         CATEGORY_WAIT, CATEGORY_FAULT):
            assert grouped[category], f"no {category} spans"

    def test_dpr_spans_never_overlap(self, chaos):
        """Single config port: DPR spans must serialize."""
        hypervisor, _ = chaos
        dpr = [s for s in build_spans(hypervisor.trace)
               if s.category == CATEGORY_DPR]
        dpr.sort(key=lambda s: s.start_ms)
        for earlier, later in zip(dpr, dpr[1:]):
            assert later.start_ms >= earlier.end_ms - 1e-9
        assert config_port_busy_ms(dpr) == pytest.approx(
            sum(s.duration_ms for s in dpr)
        )

    def test_preemption_waits_are_closed_by_resumes(self, chaos):
        hypervisor, _ = chaos
        waits = [s for s in build_spans(hypervisor.trace)
                 if s.category == CATEGORY_WAIT]
        preempted = [s for s in waits if s.name == "preempted"]
        evicted = [s for s in waits if s.name == "evicted"]
        assert preempted and evicted
        for span in waits:
            assert span.duration_ms >= 0.0

    def test_failed_config_spans_marked_not_ok(self, chaos):
        hypervisor, _ = chaos
        trace = hypervisor.trace
        failed = [s for s in build_spans(trace)
                  if s.category == CATEGORY_DPR and not s.ok]
        # Abnormal DPR spans cover at least the CONFIG_FAILED events.
        assert len(failed) >= len(trace.of_kind(TraceKind.CONFIG_FAILED))

    def test_unpaired_open_span_closes_at_horizon(self):
        trace = Trace()
        trace.record(1.0, TraceKind.TASK_CONFIG_START,
                     app_id=0, task_id="t", slot=2)
        trace.record(5.0, TraceKind.APP_ARRIVED, app_id=1)
        spans = build_spans(trace)
        assert len(spans) == 1 == expected_span_count(trace)
        assert spans[0].end_ms == 5.0
        assert not spans[0].ok

    def test_build_spans_deterministic(self, chaos):
        hypervisor, _ = chaos
        rerun, _ = _chaos_run()
        assert build_spans(hypervisor.trace) == build_spans(rerun.trace)


class TestMetricsPrimitives:
    def test_counter_rejects_negative(self):
        counter = Counter()
        counter.inc(2.0)
        with pytest.raises(MetricError):
            counter.inc(-1.0)
        assert counter.value == 2.0

    def test_histogram_buckets_cumulative_in_text(self):
        histogram = Histogram(buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        registry = MetricsRegistry()
        registry._metrics["h"] = ("histogram", "", histogram)
        text = to_prometheus(registry.snapshot())
        assert 'h_bucket{le="+Inf"} 4' in text
        assert "h_count 4" in text

    def test_registry_type_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(MetricError):
            registry.gauge("x_total")

    def test_invalid_metric_name_raises(self):
        with pytest.raises(MetricError):
            MetricsRegistry().counter("bad name")

    def test_merge_is_associative_and_order_independent(self):
        def snap(counter_value, gauge_value):
            registry = MetricsRegistry()
            registry.counter("c_total").inc(counter_value)
            registry.gauge("g").set(gauge_value)
            registry.histogram("h", buckets=(1.0, 10.0)).observe(gauge_value)
            return registry.snapshot()

        parts = [snap(1, 0.5), snap(2, 5.0), snap(4, 2.0)]
        forward = merge_snapshots(parts)
        backward = merge_snapshots(reversed(parts))
        assert forward == backward
        assert forward["counters"]["c_total"]["value"] == 7
        assert forward["gauges"]["g"]["value"] == 5.0
        assert forward["histograms"]["h"]["count"] == 3

    def test_quantile_from_histogram(self):
        histogram = Histogram(buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 3.5):
            histogram.observe(value)
        record = {
            "buckets": list(histogram.buckets),
            "bucket_counts": list(histogram.bucket_counts),
            "count": histogram.count,
            "sum": histogram.sum,
        }
        assert 0.0 < quantile_from_histogram(record, 0.5) <= 4.0
        assert quantile_from_histogram({"buckets": [], "bucket_counts": [],
                                        "count": 0, "sum": 0.0}, 0.5) != \
            quantile_from_histogram(record, 0.5)


class TestInstrumentation:
    def test_observer_does_not_change_the_trace(self):
        from repro.hypervisor.hypervisor import Hypervisor
        from repro.schedulers.registry import make_scheduler

        sequence = scenario_sequence(STRESS, 4, 8)
        plain = Hypervisor(make_scheduler("nimblock"))
        for request in sequence.to_requests():
            plain.submit(request)
        plain.run()
        observed, _ = observed_run("nimblock", sequence)
        assert plain.trace.events == observed.trace.events

    def test_counters_match_trace_kind_counts(self, chaos):
        hypervisor, observer = chaos
        snapshot = observer.snapshot()
        counters = snapshot["counters"]
        trace = hypervisor.trace
        assert counters["nimblock_preemptions_total"]["value"] == len(
            trace.of_kind(TraceKind.TASK_PREEMPTED)
        )
        assert counters["nimblock_slot_faults_total"]["value"] == len(
            trace.of_kind(TraceKind.SLOT_FAULT)
        )
        assert counters["nimblock_resumes_total"]["value"] == len(
            trace.of_kind(TraceKind.TASK_RESUMED)
        )
        assert counters["nimblock_scheduler_passes_total"]["value"] == \
            hypervisor.scheduler_passes

    def test_snapshot_excludes_profile_by_default(self, chaos):
        _, observer = chaos
        assert "profile" not in observer.snapshot()
        assert "profile" in observer.snapshot(include_profile=True)

    def test_profile_mode_records_pass_latency(self):
        sequence = scenario_sequence(STRESS, 5, 6)
        _, observer = observed_run("nimblock", sequence, profile=True)
        profile = observer.snapshot(include_profile=True)["profile"]
        latency = profile["histograms"]["nimblock_pass_decision_seconds"]
        assert latency["count"] > 0

    def test_snapshot_run_on_plain_hypervisor(self):
        from repro.hypervisor.hypervisor import Hypervisor
        from repro.schedulers.registry import make_scheduler

        hypervisor = Hypervisor(make_scheduler("nimblock"))
        for request in scenario_sequence(STRESS, 6, 5).to_requests():
            hypervisor.submit(request)
        hypervisor.run()
        snapshot = snapshot_run(hypervisor)
        assert snapshot["counters"]["nimblock_apps_retired_total"]["value"] > 0

    def test_hypervisor_never_imports_observe_when_unobserved(self):
        """Structural zero-overhead: a plain run loads no observe module."""
        code = (
            "import sys\n"
            "from repro.hypervisor.hypervisor import Hypervisor\n"
            "from repro.schedulers.registry import make_scheduler\n"
            "from repro.workload.scenarios import STRESS, scenario_sequence\n"
            "hv = Hypervisor(make_scheduler('nimblock'))\n"
            "for r in scenario_sequence(STRESS, 1, 5).to_requests():\n"
            "    hv.submit(r)\n"
            "hv.run()\n"
            "bad = [m for m in sys.modules if 'observe' in m]\n"
            "assert not bad, bad\n"
        )
        subprocess.run(
            [sys.executable, "-c", code], check=True, capture_output=True
        )


class TestChromeExporter:
    def test_payload_is_valid_and_span_count_matches(self, chaos):
        hypervisor, _ = chaos
        payload = trace_to_chrome(
            hypervisor.trace, num_slots=hypervisor.config.num_slots
        )
        assert validate_chrome_trace(payload) == expected_span_count(
            hypervisor.trace
        )

    def test_payload_round_trips_through_json(self, chaos):
        hypervisor, _ = chaos
        payload = trace_to_chrome(hypervisor.trace)
        rebuilt = json.loads(json.dumps(payload))
        assert validate_chrome_trace(rebuilt) == payload["otherData"]["spans"]

    def test_save_chrome_trace(self, chaos, tmp_path):
        hypervisor, _ = chaos
        path = save_chrome_trace(hypervisor.trace, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) > 0

    def test_validate_rejects_malformed(self):
        with pytest.raises(ExperimentError):
            validate_chrome_trace({"traceEvents": "nope"})
        with pytest.raises(ExperimentError):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        with pytest.raises(ExperimentError):
            validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "X", "pid": 1, "tid": 0,
                 "ts": -5.0, "dur": 1.0},
            ]})

    def test_jsonl_has_one_line_per_event(self, chaos):
        hypervisor, _ = chaos
        text = trace_to_jsonl(hypervisor.trace)
        lines = text.strip().splitlines()
        assert len(lines) == len(hypervisor.trace)
        kinds = {json.loads(line)["kind"] for line in lines}
        assert TraceKind.SLOT_FAULT.value in kinds


class TestPrometheusExporter:
    def test_exposition_format_shape(self, chaos):
        _, observer = chaos
        text = snapshot_to_prometheus(observer.snapshot())
        assert "# TYPE nimblock_apps_retired_total counter" in text
        assert "# TYPE nimblock_sim_time_ms gauge" in text
        assert 'nimblock_dpr_duration_ms_bucket{le="+Inf"}' in text
        assert text.endswith("\n")

    def test_profile_section_appended_after_marker(self, chaos):
        _, observer = chaos
        text = snapshot_to_prometheus(observer.snapshot(include_profile=True))
        deterministic, _, profiled = text.partition(
            "# profile (wall-clock, non-deterministic)\n"
        )
        assert deterministic == snapshot_to_prometheus(observer.snapshot())
        assert "nimblock_pass_decision_seconds" in profiled


class TestParallelAggregation:
    def test_collect_metrics_identical_serial_vs_parallel(self):
        sequences = [scenario_sequence(STRESS, seed, 6) for seed in (1, 2, 3)]
        faults = chaos_scenario("mixed").fault_config(0.05, seed=9)
        serial = collect_metrics(
            ["nimblock", "fcfs"], sequences, fault_config=faults, jobs=1
        )
        fanned = collect_metrics(
            ["nimblock", "fcfs"], sequences, fault_config=faults, jobs=3
        )
        assert json.dumps(serial, sort_keys=True) == \
            json.dumps(fanned, sort_keys=True)

    def test_merged_equals_sum_of_cells(self):
        sequences = [scenario_sequence(STRESS, seed, 5) for seed in (1, 2)]
        merged = collect_metrics(["nimblock"], sequences)
        total = 0.0
        for sequence in sequences:
            _, observer = observed_run("nimblock", sequence)
            cell = observer.snapshot()
            total += cell["counters"]["nimblock_items_completed_total"]["value"]
        assert merged["counters"]["nimblock_items_completed_total"]["value"] \
            == total


class TestTraceExportRoundTrip:
    def test_round_trip_covers_all_fault_kinds(self, chaos, tmp_path):
        hypervisor, _ = chaos
        trace = hypervisor.trace
        present = {event.kind for event in trace}
        for kind in (TraceKind.SLOT_FAULT, TraceKind.SLOT_REPAIRED,
                     TraceKind.CONFIG_FAILED, TraceKind.TASK_RELOCATED):
            assert kind in present, f"fixture trace lacks {kind}"
        path = save_trace(trace, tmp_path / "chaos.json", label="chaos")
        rebuilt = load_trace(path)
        assert rebuilt.events == trace.events

    def test_every_fault_kind_survives_dict_round_trip(self):
        trace = Trace()
        trace.record(1.0, TraceKind.SLOT_FAULT, app_id=1, task_id="t",
                     slot=3, detail=12.5)
        trace.record(2.0, TraceKind.CONFIG_FAILED, app_id=1, task_id="t",
                     slot=3, detail=40.0)
        trace.record(3.0, TraceKind.TASK_RELOCATED, app_id=1, task_id="t",
                     slot=5, detail=3.0)
        trace.record(4.0, TraceKind.SLOT_REPAIRED, slot=3)
        trace.record(5.0, TraceKind.TASK_RESUMED, app_id=1, task_id="t",
                     slot=5)
        rebuilt = trace_from_dict(trace_to_dict(trace, label="faults"))
        assert rebuilt.events == trace.events

    def test_span_builder_agrees_after_round_trip(self, chaos, tmp_path):
        hypervisor, _ = chaos
        path = save_trace(hypervisor.trace, tmp_path / "again.json")
        assert build_spans(load_trace(path)) == build_spans(hypervisor.trace)
