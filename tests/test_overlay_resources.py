"""Tests for resource vectors and Table 1 data (repro.overlay.resources)."""

from __future__ import annotations

import pytest

from repro.errors import FloorplanError
from repro.overlay.resources import (
    RESOURCE_KINDS,
    ResourceVector,
    SLOT_UTILIZATION_RANGE,
    STATIC_REGION_UTILIZATION,
    ZCU106_RESOURCES,
    slot_resource_vector,
)


class TestResourceVector:
    def test_from_mapping_fills_missing_with_zero(self):
        vector = ResourceVector.from_mapping({"DSP": 5})
        assert vector.as_dict()["DSP"] == 5
        assert vector.as_dict()["LUT"] == 0

    def test_from_mapping_rejects_unknown_kind(self):
        with pytest.raises(FloorplanError, match="unknown resource"):
            ResourceVector.from_mapping({"BOGUS": 1})

    def test_rejects_wrong_arity(self):
        with pytest.raises(FloorplanError, match="expected"):
            ResourceVector((1, 2, 3))

    def test_rejects_negative(self):
        counts = [0] * len(RESOURCE_KINDS)
        counts[0] = -1
        with pytest.raises(FloorplanError, match="negative"):
            ResourceVector(tuple(counts))

    def test_addition(self):
        a = ResourceVector.from_mapping({"DSP": 1, "LUT": 2})
        b = ResourceVector.from_mapping({"DSP": 3})
        assert (a + b).as_dict()["DSP"] == 4
        assert (a + b).as_dict()["LUT"] == 2

    def test_scaling(self):
        a = ResourceVector.from_mapping({"DSP": 2})
        assert a.scaled(3).as_dict()["DSP"] == 6
        assert a.scaled(0) == ResourceVector.zero()

    def test_scaling_rejects_negative_factor(self):
        with pytest.raises(FloorplanError, match="factor"):
            ResourceVector.zero().scaled(-1)

    def test_fits_within(self):
        small = ResourceVector.from_mapping({"DSP": 1})
        big = ResourceVector.from_mapping({"DSP": 2, "LUT": 5})
        assert small.fits_within(big)
        assert not big.fits_within(small)

    def test_utilization_handles_zero_capacity(self):
        used = ResourceVector.from_mapping({"DSP": 1})
        cap = ResourceVector.from_mapping({"DSP": 2})
        util = used.utilization_of(cap)
        assert util["DSP"] == 0.5
        assert util["LUT"] == 0.0


class TestTable1Data:
    def test_kinds_match_table1_columns(self):
        assert RESOURCE_KINDS == (
            "DSP", "LUT", "FF", "Carry", "RAMB18", "RAMB36", "IOBuf",
        )

    def test_slot_range_values_from_paper(self):
        assert SLOT_UTILIZATION_RANGE["DSP"] == (46, 92)
        assert SLOT_UTILIZATION_RANGE["LUT"] == (9680, 12960)
        assert SLOT_UTILIZATION_RANGE["RAMB36"] == (22, 23)

    def test_static_region_values_from_paper(self):
        static = STATIC_REGION_UTILIZATION.as_dict()
        assert static["DSP"] == 1004
        assert static["LUT"] == 122560
        assert static["IOBuf"] == 24803

    def test_slot_vector_min_max(self):
        low = slot_resource_vector("min").as_dict()
        high = slot_resource_vector("max").as_dict()
        assert low["DSP"] == 46 and high["DSP"] == 92
        assert all(low[k] <= high[k] for k in RESOURCE_KINDS)

    def test_slot_vector_rejects_bad_selector(self):
        with pytest.raises(FloorplanError, match="min.*max"):
            slot_resource_vector("median")

    def test_ten_min_slots_plus_static_fit_device(self):
        total = STATIC_REGION_UTILIZATION + slot_resource_vector("min").scaled(10)
        assert total.fits_within(ZCU106_RESOURCES)

    def test_ten_max_slots_would_overflow(self):
        # The Table 1 range cannot have all ten slots at the max end; the
        # uniform-area slots differ in column mix on the real device.
        total = STATIC_REGION_UTILIZATION + slot_resource_vector("max").scaled(10)
        assert not total.fits_within(ZCU106_RESOURCES)
