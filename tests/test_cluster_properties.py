"""Property-based determinism suite (hypothesis) for the cluster tier.

Two guarantees, spelled out as properties over random fleets and
arrival streams:

* **placement purity** — placement decisions are a pure function of
  (seed, policy, board profiles, arrival stream): rebuilding the same
  cluster and replaying the same stream reproduces the decision list
  exactly, and the decisions never depend on ``jobs`` (placement runs
  strictly before the sharded simulation);
* **merge invariance** — serial and sharded cluster runs merge to
  ``to_dict``-exact metrics at any ``--jobs``, and the merged response
  sketch is independent of the order the per-board payloads are merged
  in (associativity carried up from the quantile sketch).
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import (
    PLACEMENT_POLICIES,
    Cluster,
    fleet_profiles,
)
from repro.cluster.profiles import DEFAULT_FLEET_MIX
from repro.service.sketch import QuantileSketch
from repro.workload.events import EventSpec

#: The lightweight end of the benchmark catalogue — property tests run
#: hundreds of simulations, so the kiloseconds-long outliers stay out.
BENCHMARKS = ("lenet", "imgc", "3dr", "of")

policy_names = st.sampled_from(PLACEMENT_POLICIES)
mixes = st.sampled_from([
    ("zcu106",), ("edge",), ("hpc",), DEFAULT_FLEET_MIX,
    ("hpc", "edge"),
])


@st.composite
def arrival_streams(draw, max_events: int = 10):
    """A short, valid (arrival-ordered) burst of application events."""
    count = draw(st.integers(min_value=1, max_value=max_events))
    arrival = 0.0
    events = []
    for _ in range(count):
        arrival += draw(
            st.floats(min_value=0.0, max_value=500.0,
                      allow_nan=False, allow_infinity=False)
        )
        events.append(EventSpec(
            benchmark=draw(st.sampled_from(BENCHMARKS)),
            batch_size=draw(st.integers(min_value=1, max_value=4)),
            priority=draw(st.integers(min_value=1, max_value=3)),
            arrival_ms=arrival,
        ))
    return events


def build(events, policy, num_boards, mix, seed):
    fleet = Cluster(
        fleet_profiles(num_boards, mix),
        placement=policy,
        seed=seed,
    )
    fleet.submit_sequence(events)
    return fleet


@settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    events=arrival_streams(max_events=12),
    policy=policy_names,
    num_boards=st.integers(min_value=1, max_value=5),
    mix=mixes,
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_placement_is_a_pure_function_of_inputs(
    events, policy, num_boards, mix, seed
):
    first = build(events, policy, num_boards, mix, seed)
    second = build(events, policy, num_boards, mix, seed)
    assert first.decisions == second.decisions
    for index in range(num_boards):
        assert first.board_queue(index) == second.board_queue(index)
    # Decisions target real, eligible boards and cover every admission.
    assert len(first.decisions) == len(events)
    assert all(0 <= d.board < num_boards for d in first.decisions)


@settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    events=arrival_streams(max_events=6),
    policy=policy_names,
    num_boards=st.integers(min_value=1, max_value=3),
    mix=mixes,
    seed=st.integers(min_value=0, max_value=2**16),
    jobs=st.integers(min_value=2, max_value=4),
)
def test_serial_and_sharded_runs_merge_to_dict_exact(
    events, policy, num_boards, mix, seed, jobs
):
    serial = build(events, policy, num_boards, mix, seed).run(jobs=1)
    sharded = build(events, policy, num_boards, mix, seed).run(jobs=jobs)
    assert serial.to_dict() == sharded.to_dict()
    assert serial.snapshot_digest() == sharded.snapshot_digest()


@settings(
    max_examples=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    events=arrival_streams(max_events=8),
    policy=policy_names,
    seed=st.integers(min_value=0, max_value=2**16),
    shuffle_seed=st.integers(min_value=0, max_value=2**16),
)
def test_merged_sketch_is_shard_order_invariant(
    events, policy, seed, shuffle_seed
):
    report = build(events, policy, 4, DEFAULT_FLEET_MIX, seed).run(jobs=1)
    payloads = list(report.boards)
    random.Random(shuffle_seed).shuffle(payloads)
    merged = QuantileSketch()
    for payload in payloads:
        merged = merged.merge(QuantileSketch.from_dict(payload["responses"]))
    assert merged.to_dict() == report.sketch.to_dict()
