"""Keep the docstring examples honest: run them as doctests."""

from __future__ import annotations

import doctest

import pytest

import repro
import repro.overlay.floorplan
import repro.sim.engine

MODULES_WITH_EXAMPLES = [
    repro,
    repro.sim.engine,
    repro.overlay.floorplan,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_EXAMPLES, ids=lambda m: m.__name__
)
def test_docstring_examples(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__} doctests failed"
    assert results.attempted > 0, f"{module.__name__} has no examples"
