"""Tests for sequence JSON persistence (repro.workload.trace_io)."""

from __future__ import annotations

import json

import pytest

from repro.errors import WorkloadError
from repro.workload.scenarios import scenario_sequence, STANDARD
from repro.workload.trace_io import (
    load_sequence,
    load_suite,
    save_sequence,
    save_suite,
    sequence_from_dict,
    sequence_to_dict,
)


@pytest.fixture
def sequence():
    return scenario_sequence(STANDARD, seed=7, num_events=6)


class TestRoundTrip:
    def test_dict_round_trip_preserves_events(self, sequence):
        rebuilt = sequence_from_dict(sequence_to_dict(sequence))
        assert rebuilt.events == sequence.events
        assert rebuilt.label == sequence.label

    def test_file_round_trip(self, sequence, tmp_path):
        path = save_sequence(sequence, tmp_path / "seq.json")
        assert path.exists()
        rebuilt = load_sequence(path)
        assert rebuilt.events == sequence.events

    def test_suite_round_trip(self, tmp_path):
        sequences = [
            scenario_sequence(STANDARD, seed, num_events=4)
            for seed in (1, 2, 3)
        ]
        paths = save_suite(sequences, tmp_path / "suite")
        assert len(paths) == 3
        rebuilt = load_suite(tmp_path / "suite")
        assert [s.label for s in rebuilt] == sorted(
            s.label for s in sequences
        )


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(WorkloadError, match="no sequence file"):
            load_sequence(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(WorkloadError, match="not valid JSON"):
            load_sequence(path)

    def test_wrong_format_version(self, sequence, tmp_path):
        payload = sequence_to_dict(sequence)
        payload["format"] = 99
        path = tmp_path / "v99.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(WorkloadError, match="unsupported sequence format"):
            load_sequence(path)

    def test_missing_event_field(self, sequence):
        payload = sequence_to_dict(sequence)
        del payload["events"][0]["priority"]
        with pytest.raises(WorkloadError, match="missing field"):
            sequence_from_dict(payload)

    def test_empty_events_rejected(self):
        with pytest.raises(WorkloadError, match="no events"):
            sequence_from_dict({"format": 1, "events": []})

    def test_non_dict_rejected(self):
        with pytest.raises(WorkloadError, match="expected an object"):
            sequence_from_dict([1, 2])  # type: ignore[arg-type]

    def test_load_suite_requires_directory(self, tmp_path):
        with pytest.raises(WorkloadError, match="not a directory"):
            load_suite(tmp_path / "missing")


class TestLoadedSequencesRun:
    def test_loaded_sequence_drives_hypervisor(self, sequence, tmp_path):
        from repro import Hypervisor, make_scheduler

        rebuilt = load_sequence(save_sequence(sequence, tmp_path / "s.json"))
        hypervisor = Hypervisor(make_scheduler("fcfs"))
        for request in rebuilt.to_requests():
            hypervisor.submit(request)
        hypervisor.run()
        assert hypervisor.all_retired
