"""Tests for the metrics layer (repro.metrics)."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.metrics.breakdown import TimeBreakdown, breakdown_by_benchmark
from repro.metrics.deadlines import (
    DEFAULT_DS_VALUES,
    deadline_curve,
    first_point_below,
    violation_rate,
)
from repro.metrics.response import (
    ResponseStats,
    match_results,
    mean_reduction_factor,
    normalized_responses,
    per_event_mean_reduction,
    percentile,
    reduction_factors,
    tail_normalized_response,
)
from tests.test_results import make_result


def paired_results(base_responses, other_responses, **kwargs):
    base = [
        make_result(app_id=i, arrival_ms=0.0, first_start_ms=1.0,
                    retire_ms=r, **kwargs)
        for i, r in enumerate(base_responses)
    ]
    other = [
        make_result(app_id=i, arrival_ms=0.0, first_start_ms=1.0,
                    retire_ms=r, **kwargs)
        for i, r in enumerate(other_responses)
    ]
    return base, other


class TestMatching:
    def test_mismatched_sizes_rejected(self):
        base, other = paired_results([10.0, 20.0], [10.0])
        with pytest.raises(ExperimentError, match="sizes differ"):
            match_results(base, other)

    def test_mismatched_events_rejected(self):
        base, _ = paired_results([10.0], [10.0])
        other = [make_result(name="other", retire_ms=5.0)]
        with pytest.raises(ExperimentError, match="mismatch"):
            match_results(base, other)


class TestReductions:
    def test_normalized_and_reduction_are_reciprocal(self):
        base, other = paired_results([100.0, 200.0], [50.0, 100.0])
        assert normalized_responses(base, other) == [0.5, 0.5]
        assert reduction_factors(base, other) == [2.0, 2.0]

    def test_mean_reduction_uses_average_responses(self):
        base, other = paired_results([100.0, 300.0], [100.0, 100.0])
        # mean(base)=200, mean(other)=100 -> 2.0 (not mean of [1, 3] = 2...).
        assert mean_reduction_factor(base, other) == 2.0
        base, other = paired_results([100.0, 300.0], [10.0, 300.0])
        # mean ratio: 400/310; per-event mean: (10 + 1)/2 = 5.5.
        assert mean_reduction_factor(base, other) == pytest.approx(400 / 310)
        assert per_event_mean_reduction(base, other) == pytest.approx(5.5)


class TestPercentile:
    def test_endpoints_and_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == 2.5

    def test_single_value(self):
        assert percentile([7.0], 95) == 7.0

    def test_validation(self):
        with pytest.raises(ExperimentError):
            percentile([], 50)
        with pytest.raises(ExperimentError):
            percentile([1.0], 150)

    def test_tail_normalized(self):
        base, other = paired_results(
            [100.0] * 10, [10.0] * 9 + [200.0]
        )
        assert tail_normalized_response(base, other, 100) == 2.0

    def test_response_stats_bundle(self):
        base, other = paired_results([100.0, 100.0], [50.0, 25.0])
        stats = ResponseStats.compute("x", base, other)
        assert stats.events == 2
        assert stats.scheduler == "x"
        assert stats.p99_normalized <= 0.5


class TestDeadlines:
    def test_sweep_covers_paper_range(self):
        assert DEFAULT_DS_VALUES[0] == 1.0
        assert DEFAULT_DS_VALUES[-1] == 20.0
        assert DEFAULT_DS_VALUES[1] - DEFAULT_DS_VALUES[0] == 0.25
        assert len(DEFAULT_DS_VALUES) == 77

    def test_violation_rate(self):
        results = [
            make_result(arrival_ms=0.0, retire_ms=300.0,
                        single_slot_latency_ms=100.0),
            make_result(arrival_ms=0.0, retire_ms=150.0,
                        single_slot_latency_ms=100.0),
        ]
        assert violation_rate(results, 2.0) == 0.5
        assert violation_rate(results, 4.0) == 0.0

    def test_priority_filter(self):
        results = [
            make_result(priority=9, arrival_ms=0.0, retire_ms=300.0,
                        single_slot_latency_ms=100.0),
            make_result(priority=1, arrival_ms=0.0, retire_ms=100.5,
                        single_slot_latency_ms=100.0),
        ]
        assert violation_rate(results, 2.0, priority=9) == 1.0
        with pytest.raises(ExperimentError, match="no applications"):
            violation_rate(results, 2.0, priority=3)

    def test_curve_monotone_and_error_point(self):
        results = [
            make_result(arrival_ms=0.0, retire_ms=float(r),
                        single_slot_latency_ms=100.0)
            for r in (150, 250, 350, 450)
        ]
        curve = deadline_curve("x", results, priority=None)
        assert all(a >= b for a, b in zip(curve.rates, curve.rates[1:]))
        assert curve.tightest_rate == 1.0
        assert curve.error_point(0.10) == 4.5
        assert first_point_below(curve, 0.5) == 2.5

    def test_curve_rate_at_unswept_value_rejected(self):
        results = [make_result()]
        curve = deadline_curve("x", results, priority=None)
        with pytest.raises(ExperimentError, match="sweep"):
            curve.rate_at(1.33)

    def test_error_point_never_reached(self):
        results = [
            make_result(retire_ms=1e9, single_slot_latency_ms=1.0)
        ]
        curve = deadline_curve("x", results, priority=None)
        assert curve.error_point(0.10) is None


class TestBreakdown:
    def test_fractions_average_per_benchmark(self):
        results = [
            make_result(name="a", arrival_ms=0.0, first_start_ms=50.0,
                        retire_ms=100.0, run_busy_ms=40.0,
                        reconfig_busy_ms=10.0),
            make_result(name="a", arrival_ms=0.0, first_start_ms=0.0,
                        retire_ms=200.0, run_busy_ms=100.0,
                        reconfig_busy_ms=20.0),
        ]
        breakdown = TimeBreakdown.from_results("a", results)
        assert breakdown.samples == 2
        assert breakdown.run_fraction == pytest.approx((0.4 + 0.5) / 2)
        assert breakdown.wait_fraction == pytest.approx(0.25)

    def test_grouping(self):
        results = [
            make_result(name="a"), make_result(name="b"),
            make_result(name="a"),
        ]
        grouped = breakdown_by_benchmark(results)
        assert set(grouped) == {"a", "b"}
        assert grouped["a"].samples == 2

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError, match="no results"):
            TimeBreakdown.from_results("a", [])
