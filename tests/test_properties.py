"""Property-based tests (hypothesis) on core invariants.

Two families:

* structural properties of randomly generated task graphs;
* full-simulation invariants: for every scheduler and random workload, the
  executed trace must respect slot exclusivity, CAP serialization, item
  dependency order and conservation of work.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.hypervisor.application import AppRequest
from repro.hypervisor.hypervisor import Hypervisor
from repro.ilp.estimator import estimate_makespan_ms
from repro.ilp.model import ScheduleProblem
from repro.metrics.response import percentile
from repro.schedulers.registry import make_scheduler
from repro.sim.trace import TraceKind
from repro.taskgraph.builders import (
    chain_graph,
    diamond_graph,
    layered_graph,
)
from repro.taskgraph.graph import TaskGraph

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

latencies = st.floats(min_value=1.0, max_value=200.0, allow_nan=False)


@st.composite
def small_graphs(draw) -> TaskGraph:
    """Chains, diamonds and small layered DAGs with random latencies."""
    shape = draw(st.sampled_from(["chain", "diamond", "layered"]))
    name = f"g{draw(st.integers(min_value=0, max_value=999))}"
    if shape == "chain":
        lats = draw(st.lists(latencies, min_size=1, max_size=4))
        return chain_graph(name, lats)
    if shape == "diamond":
        lats = draw(st.lists(latencies, min_size=4, max_size=4))
        return diamond_graph(name, lats)
    widths = draw(st.lists(st.integers(1, 3), min_size=2, max_size=3))
    lats = draw(
        st.lists(latencies, min_size=len(widths), max_size=len(widths))
    )
    return layered_graph(name, widths, lats)


@st.composite
def workloads(draw) -> List[AppRequest]:
    """1-4 applications with random batches, priorities and arrivals."""
    count = draw(st.integers(min_value=1, max_value=4))
    requests = []
    arrival = 0.0
    for index in range(count):
        graph = draw(small_graphs())
        arrival += draw(st.floats(min_value=0.0, max_value=500.0))
        requests.append(
            AppRequest(
                name=f"{graph.name}_{index}",
                graph=graph,
                batch_size=draw(st.integers(min_value=1, max_value=4)),
                priority=draw(st.sampled_from([1, 3, 9])),
                arrival_ms=arrival,
            )
        )
    return requests


# ---------------------------------------------------------------------------
# Graph properties
# ---------------------------------------------------------------------------


class TestGraphProperties:
    @given(small_graphs())
    @settings(max_examples=60, deadline=None)
    def test_topological_order_is_consistent(self, graph):
        index = {t: i for i, t in enumerate(graph.topological_order)}
        for src, dst in graph.edges:
            assert index[src] < index[dst]

    @given(small_graphs())
    @settings(max_examples=60, deadline=None)
    def test_critical_path_bounds(self, graph):
        cp = graph.critical_path_ms()
        total = graph.total_latency_ms()
        longest_task = max(
            graph.task(t).latency_ms for t in graph.topological_order
        )
        assert longest_task <= cp <= total + 1e-9

    @given(small_graphs())
    @settings(max_examples=60, deadline=None)
    def test_width_times_depth_covers_tasks(self, graph):
        assert graph.max_width() * graph.depth() >= graph.num_tasks


# ---------------------------------------------------------------------------
# Percentile properties
# ---------------------------------------------------------------------------


class TestPercentileProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                 max_size=50),
        st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_percentile_within_range(self, values, pct):
        result = percentile(values, pct)
        assert min(values) <= result <= max(values)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=2,
                    max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_percentile_monotone_in_pct(self, values):
        assert percentile(values, 25) <= percentile(values, 75)


# ---------------------------------------------------------------------------
# Simulation invariants
# ---------------------------------------------------------------------------

SCHEDULERS = ["baseline", "fcfs", "prema", "rr", "nimblock",
              "nimblock_no_pipe"]


def _check_invariants(hypervisor: Hypervisor, pipelined: bool) -> None:
    trace = hypervisor.trace
    # 1. CAP serialization: config intervals never overlap.
    config_intervals = []
    pending: Dict[Tuple, float] = {}
    for event in trace:
        key = (event.app_id, event.task_id, event.slot)
        if event.kind == TraceKind.TASK_CONFIG_START:
            pending[key] = event.time
        elif event.kind == TraceKind.TASK_CONFIG_DONE:
            config_intervals.append((pending.pop(key), event.time))
    config_intervals.sort()
    for (_, end), (start, _) in zip(config_intervals, config_intervals[1:]):
        assert start >= end - 1e-9, "overlapping reconfigurations"

    # 2. Slot exclusivity: item intervals on one slot never overlap.
    slot_intervals: Dict[int, List[Tuple[float, float]]] = {}
    open_items: Dict[Tuple, float] = {}
    for event in trace:
        key = (event.app_id, event.task_id, event.slot, event.detail)
        if event.kind == TraceKind.ITEM_START:
            open_items[key] = event.time
        elif event.kind == TraceKind.ITEM_DONE:
            start = open_items.pop(key)
            slot_intervals.setdefault(event.slot, []).append(
                (start, event.time)
            )
    assert not open_items, "items started but never finished"
    for intervals in slot_intervals.values():
        intervals.sort()
        for (_, end), (start, _) in zip(intervals, intervals[1:]):
            assert start >= end - 1e-9, "two items overlap on one slot"

    # 3. Per-task item order and dependency order.
    done_at: Dict[Tuple[int, str, int], float] = {}
    started_at: Dict[Tuple[int, str, int], float] = {}
    for event in trace:
        if event.kind == TraceKind.ITEM_START:
            started_at[(event.app_id, event.task_id, int(event.detail))] = (
                event.time
            )
        elif event.kind == TraceKind.ITEM_DONE:
            done_at[(event.app_id, event.task_id, int(event.detail))] = (
                event.time
            )
    for app in hypervisor.apps.values():
        batch = app.batch_size
        for task_id in app.graph.topological_order:
            for item in range(batch):
                key = (app.app_id, task_id, item)
                assert key in done_at, f"missing item {key}"
                if item > 0:
                    prev = (app.app_id, task_id, item - 1)
                    assert started_at[key] >= done_at[prev] - 1e-9
                for pred in app.graph.predecessors(task_id):
                    pred_key = (app.app_id, pred, item)
                    assert started_at[key] >= done_at[pred_key] - 1e-9, (
                        "item ran before its input existed"
                    )

    # 4. Conservation: every (task, item) ran exactly once; run_busy
    #    matches the ideal sum.
    for result in hypervisor.results():
        app = hypervisor.apps[result.app_id]
        ideal = sum(
            app.batch_size * app.graph.task(t).latency_ms
            for t in app.graph.topological_order
        )
        assert result.run_busy_ms == pytest.approx(ideal)
        # 5. Response bounded below by the pipelined critical path.
        assert result.response_ms >= app.graph.critical_path_ms() - 1e-9

    # 6. No leaked buffers.
    assert hypervisor.buffers.live_buffers == 0


@pytest.mark.parametrize("scheduler_name", SCHEDULERS)
@given(requests=workloads())
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_simulation_invariants(scheduler_name, requests):
    config = SystemConfig(num_slots=3)
    policy = make_scheduler(scheduler_name)
    hypervisor = Hypervisor(policy, config=config)
    for request in requests:
        hypervisor.submit(request)
    hypervisor.run()
    assert hypervisor.all_retired
    _check_invariants(hypervisor, policy.pipelined)


@given(
    graph=small_graphs(),
    batch=st.integers(min_value=1, max_value=4),
    slots=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_estimator_monotone_in_slots(graph, batch, slots):
    """More slots never hurt the estimated isolated latency by much.

    The heuristic estimator is not guaranteed perfectly monotone, but it
    must never be more than a whisker above the previous slot count's best
    (it can always ignore the extra slot).
    """
    smaller = estimate_makespan_ms(
        ScheduleProblem(graph, batch, slots, 80.0)
    )
    larger = estimate_makespan_ms(
        ScheduleProblem(graph, batch, slots + 1, 80.0)
    )
    assert larger <= smaller * 1.10 + 1e-6


@pytest.mark.parametrize("scheduler_name", ["baseline", "nimblock"])
@given(requests=workloads())
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_utilization_shares_are_well_formed(scheduler_name, requests):
    """Utilization shares stay in [0, 1] and sum to 1 on any workload."""
    from repro.metrics.utilization import board_utilization

    config = SystemConfig(num_slots=3)
    hypervisor = Hypervisor(make_scheduler(scheduler_name), config=config)
    for request in requests:
        hypervisor.submit(request)
    hypervisor.run()
    report = board_utilization(hypervisor.trace, config.num_slots)
    shares = (
        report.compute_fraction, report.reconfig_fraction,
        report.idle_resident_fraction, report.empty_fraction,
    )
    assert all(-1e-9 <= share <= 1.0 + 1e-9 for share in shares)
    assert sum(shares) == pytest.approx(1.0)
