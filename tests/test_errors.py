"""Tests for the exception hierarchy (repro.errors)."""

from __future__ import annotations

import inspect

import repro.errors as errors
from repro.errors import ReproError


def _error_classes():
    return [
        obj for _, obj in inspect.getmembers(errors, inspect.isclass)
        if issubclass(obj, Exception) and obj.__module__ == "repro.errors"
    ]


class TestHierarchy:
    def test_every_error_derives_from_repro_error(self):
        for cls in _error_classes():
            assert issubclass(cls, ReproError), cls

    def test_repro_error_derives_from_exception(self):
        assert issubclass(ReproError, Exception)

    def test_expected_members_exist(self):
        names = {cls.__name__ for cls in _error_classes()}
        expected = {
            "ReproError", "TaskGraphError", "PartitionError",
            "FloorplanError", "BitstreamError", "ReconfigurationError",
            "SlotStateError", "BufferError_", "SchedulerError",
            "SimulationError", "WorkloadError", "ExperimentError",
            "SolverError",
        }
        assert expected <= names

    def test_single_except_catches_everything(self):
        caught = 0
        for cls in _error_classes():
            try:
                raise cls("boom")
            except ReproError:
                caught += 1
        assert caught == len(_error_classes())

    def test_errors_carry_messages(self):
        for cls in _error_classes():
            assert str(cls("detail 42")) == "detail 42"
