"""Golden regression pins for the cluster tier.

Extends the `test_perf_equivalence.py` / `test_golden_regression.py`
idiom to the fleet: a 4-board heterogeneous run (zcu106/edge/hpc/zcu106)
under full-rate mixed chaos faults is pinned down to the sha256 digest
of every per-board trace dump and of the merged cluster snapshot.

Any behavioural drift anywhere in the stack — placement, per-board fault
seed derivation, hypervisor scheduling, sketch serialization, payload
merge — changes a digest. If a change is *intended*, regenerate the pins
by printing ``report.snapshot_digest()`` and the per-board
``trace_digest`` fields from this exact configuration.
"""

from __future__ import annotations

from repro.cluster import Cluster, fleet_profiles
from repro.workload.generator import EventGenerator
from repro.workload.scenarios import chaos_scenario

#: sha256 of the merged cluster snapshot (``ClusterReport.to_dict``).
SNAPSHOT_DIGEST = (
    "fcedd0dff65fd2d3070184ccd02c347418304fba21a017bb1cf6b88f859dfe93"
)

#: sha256 of each board's trace dump, by board index.
BOARD_TRACE_DIGESTS = {
    0: "76fc8150d485578e45f50f5ddb97328148901057b8fe8083a166568495280519",
    1: "bfc69b80107aa24eb0704b35f5715aecf4b780a10e2238d68e532c719028dd21",
    2: "ec581c168baea4c4fb3087d7a8bae19ecb81064fd490362156ac68447e510740",
    3: "17df86cd01e959e2e3d10eb131379c5fda38919d6447a1a813519d52126daeae",
}

#: Scalar invariants of the pinned run (diagnosable failure messages
#: before the digests are even compared).
EXPECTED_RETIRED = 12
EXPECTED_TOTAL_FAULTS = 75


def golden_fleet() -> Cluster:
    """The pinned configuration: heterogeneous fleet, full-rate chaos."""
    events = EventGenerator(
        99, benchmarks=("lenet", "imgc", "3dr", "of")
    ).sequence(
        num_events=12, delay_range_ms=(200, 200), batch_range=(2, 6),
        label="cluster-golden",
    )
    faults = chaos_scenario("mixed").fault_config(1.0, seed=7)
    fleet = Cluster(
        fleet_profiles(4), placement="least_loaded",
        scheduler="nimblock", faults=faults, seed=11,
    )
    fleet.submit_sequence(events)
    return fleet


class TestClusterGoldenPins:
    def test_serial_run_matches_all_pins(self):
        report = golden_fleet().run(jobs=1)
        assert report.retired == EXPECTED_RETIRED
        assert report.fault_totals["total"] == EXPECTED_TOTAL_FAULTS
        for payload in report.boards:
            assert (
                payload["trace_digest"]
                == BOARD_TRACE_DIGESTS[payload["board"]]
            ), f"board {payload['board']} trace drifted"
        assert report.snapshot_digest() == SNAPSHOT_DIGEST

    def test_sharded_run_matches_the_same_pins(self):
        report = golden_fleet().run(jobs=3)
        for payload in report.boards:
            assert (
                payload["trace_digest"]
                == BOARD_TRACE_DIGESTS[payload["board"]]
            )
        assert report.snapshot_digest() == SNAPSHOT_DIGEST

    def test_per_board_fault_streams_are_independent(self):
        # Same chaos config, different per-board seeds: if the derived
        # streams collapsed to one, every zcu106 board would fault
        # identically; the pinned digests of boards 0 and 3 differ even
        # though their profiles are identical.
        assert BOARD_TRACE_DIGESTS[0] != BOARD_TRACE_DIGESTS[3]
