"""Tests for result export (repro.experiments.export)."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.export import (
    CSV_FIELDS,
    export_csv,
    export_json,
    load_records,
    result_to_record,
)
from repro.schedulers.registry import make_scheduler
from repro.taskgraph.builders import chain_graph
from tests.conftest import request, run_workload, small_config


@pytest.fixture
def results():
    graph = chain_graph("c", [50.0, 50.0])
    _, res = run_workload(
        make_scheduler("fcfs"),
        [request(graph, batch_size=2),
         request(graph, batch_size=1, arrival_ms=10.0)],
        small_config(),
    )
    return res


class TestRecords:
    def test_record_has_all_csv_fields(self, results):
        record = result_to_record(results[0])
        assert set(record) == set(CSV_FIELDS)

    def test_derived_metrics_consistent(self, results):
        record = result_to_record(results[0])
        assert record["response_ms"] == (
            record["retire_ms"] - record["arrival_ms"]
        )


class TestRoundTrips:
    def test_csv(self, results, tmp_path):
        path = export_csv(results, tmp_path / "run.csv")
        records = load_records(path)
        assert len(records) == len(results)
        assert records[0]["name"] == "c"
        assert float(records[0]["response_ms"]) == results[0].response_ms

    def test_json(self, results, tmp_path):
        path = export_json(results, tmp_path / "run.json", label="demo")
        records = load_records(path)
        assert len(records) == len(results)
        assert records[1]["app_id"] == 1

    def test_validation(self, results, tmp_path):
        with pytest.raises(ExperimentError, match="nothing"):
            export_csv([], tmp_path / "x.csv")
        with pytest.raises(ExperimentError, match="no export"):
            load_records(tmp_path / "missing.csv")
        weird = tmp_path / "run.txt"
        weird.write_text("x")
        with pytest.raises(ExperimentError, match="unknown export format"):
            load_records(weird)
