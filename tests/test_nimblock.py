"""Tests for the Nimblock policy itself (repro.core.nimblock)."""

from __future__ import annotations

from repro.core.nimblock import NimblockScheduler
from repro.sim.trace import TraceKind
from repro.taskgraph.builders import chain_graph, parallel_chains_graph
from tests.conftest import request, run_named, run_workload, small_config


class TestVariantFlags:
    def test_full_variant_flags(self):
        policy = NimblockScheduler()
        assert policy.name == "nimblock"
        assert policy.pipelined and policy.prefetch
        assert policy.enable_preemption

    def test_no_pipe_disables_prefetch_too(self):
        policy = NimblockScheduler(enable_pipelining=False)
        assert not policy.pipelined
        assert not policy.prefetch
        assert policy.name == "nimblock_no_pipe"

    def test_no_preempt_keeps_pipelining(self):
        policy = NimblockScheduler(enable_preemption=False)
        assert policy.pipelined
        assert policy.name == "nimblock_no_preempt"


class TestAutomaticPipelining:
    def test_sole_app_gets_goal_slots_and_pipelines(self):
        graph = chain_graph("c", [100.0, 100.0, 100.0])
        config = small_config(num_slots=4)
        hv, results = run_named(
            "nimblock", [request(graph, batch_size=6)], config
        )
        used_slots = {
            e.slot for e in hv.trace.of_kind(TraceKind.TASK_CONFIG_START)
        }
        assert len(used_slots) >= 2
        # Pipelined: response well below the bulk lower bound of
        # 80 + 3 stages x 6 items x 100.
        assert results[0].response_ms < 80.0 + 1800.0

    def test_allocation_respected_under_contention(self):
        graph = chain_graph("c", [100.0, 100.0])
        config = small_config(num_slots=2)
        reqs = [
            request(graph, batch_size=10, arrival_ms=0.0),
            request(graph, batch_size=10, arrival_ms=10.0),
        ]
        hv, results = run_named("nimblock", reqs, config)
        assert len(results) == 2
        # Both candidates must make forward progress concurrently: the
        # second app starts long before the first retires.
        assert results[1].first_start_ms < results[0].retire_ms


class TestParallelBranchExploitation:
    def test_wide_graph_claims_more_slots_than_chain(self):
        wide = parallel_chains_graph("w", 3, [100.0, 100.0])
        config = small_config(num_slots=6)
        hv, _ = run_named("nimblock", [request(wide, batch_size=2)], config)
        used = {e.slot for e in hv.trace.of_kind(TraceKind.TASK_CONFIG_START)}
        assert len(used) >= 3


class TestTokensGateScheduling:
    def test_low_priority_waits_for_high(self):
        g = chain_graph("g", [100.0])
        config = small_config(num_slots=1)
        reqs = [
            request(g, batch_size=5, priority=1, arrival_ms=0.0),
            request(g, batch_size=1, priority=9, arrival_ms=0.0),
        ]
        hv, results = run_named("nimblock", reqs, config)
        first = hv.trace.first(TraceKind.ITEM_START)
        assert first.app_id == 1

    def test_completion_clears_goal_cache(self):
        policy = NimblockScheduler()
        g = chain_graph("g", [50.0])
        _, results = run_workload(
            policy, [request(g, batch_size=1)], small_config()
        )
        assert policy._goals == {}


class TestDecideWithoutWork:
    def test_empty_system_returns_none(self):
        from repro.hypervisor.hypervisor import Hypervisor

        policy = NimblockScheduler()
        hv = Hypervisor(policy, config=small_config())
        assert policy.decide(hv._ctx) is None

    def test_preemptions_counted(self):
        hog = chain_graph("hog", [100.0, 100.0])
        vip = chain_graph("vip", [100.0])
        policy = NimblockScheduler()
        run_workload(
            policy,
            [
                request(hog, batch_size=20, priority=1, arrival_ms=0.0),
                request(vip, batch_size=1, priority=9, arrival_ms=500.0),
            ],
            small_config(num_slots=2),
        )
        assert policy.preemptions_issued >= 1
