"""Shared fixtures and helpers for the Nimblock reproduction test suite."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import pytest

from repro.config import SystemConfig
from repro.hypervisor.application import AppRequest
from repro.hypervisor.hypervisor import Hypervisor
from repro.hypervisor.results import AppResult
from repro.schedulers.base import SchedulerPolicy
from repro.schedulers.registry import make_scheduler
from repro.taskgraph.builders import chain_graph, diamond_graph
from repro.taskgraph.graph import TaskGraph


def small_config(
    num_slots: int = 2,
    reconfig_ms: float = 80.0,
    interval_ms: float = 400.0,
) -> SystemConfig:
    """A small platform for hand-computable timing tests.

    Dispatch overhead is zeroed so reconfigurations take exactly
    ``reconfig_ms`` and the arithmetic in the timing tests stays exact.
    """
    return SystemConfig(
        num_slots=num_slots,
        reconfig_ms=reconfig_ms,
        dispatch_overhead_ms=0.0,
        scheduling_interval_ms=interval_ms,
    )


def request(
    graph: TaskGraph,
    batch_size: int = 1,
    priority: int = 1,
    arrival_ms: float = 0.0,
) -> AppRequest:
    """Convenience AppRequest constructor."""
    return AppRequest(
        name=graph.name,
        graph=graph,
        batch_size=batch_size,
        priority=priority,
        arrival_ms=arrival_ms,
    )


def run_workload(
    scheduler: SchedulerPolicy,
    requests: Sequence[AppRequest],
    config: Optional[SystemConfig] = None,
) -> Tuple[Hypervisor, List[AppResult]]:
    """Run requests to completion; returns the hypervisor and its results."""
    hypervisor = Hypervisor(scheduler, config=config or small_config())
    for req in requests:
        hypervisor.submit(req)
    hypervisor.run()
    assert hypervisor.all_retired, (
        f"{scheduler.name} left work unfinished: "
        f"{len(hypervisor.retired)}/{len(hypervisor.apps)} retired"
    )
    return hypervisor, hypervisor.results()


def run_named(
    scheduler_name: str,
    requests: Sequence[AppRequest],
    config: Optional[SystemConfig] = None,
) -> Tuple[Hypervisor, List[AppResult]]:
    """run_workload with a registry scheduler name."""
    return run_workload(make_scheduler(scheduler_name), requests, config)


@pytest.fixture
def two_slot_config() -> SystemConfig:
    """Two slots, 80 ms reconfig, 400 ms interval."""
    return small_config()


@pytest.fixture
def chain2() -> TaskGraph:
    """Two-task chain, 100 ms per item each."""
    return chain_graph("chain2", [100.0, 100.0])


@pytest.fixture
def chain3() -> TaskGraph:
    """Three-task chain, 100 ms per item each."""
    return chain_graph("chain3", [100.0, 100.0, 100.0])


@pytest.fixture
def diamond() -> TaskGraph:
    """Four-task diamond, 100 ms per item each."""
    return diamond_graph("dia", [100.0, 100.0, 100.0, 100.0])
