"""Edge paths of the branch-and-bound solver and plot-free formatting."""

from __future__ import annotations

from repro.ilp.model import ScheduleProblem, evaluate_assignment
from repro.ilp.solver import BranchAndBoundSolver
from repro.taskgraph.builders import chain_graph, single_task_graph


class TestSolverEdgePaths:
    def test_single_task_hits_lower_bound_fallback(self):
        # One task, one slot: the heuristic incumbent equals the lower
        # bound, pruning eats the whole tree, and the solver must still
        # return a valid assignment.
        graph = single_task_graph("s", 100.0)
        problem = ScheduleProblem(graph, 3, 1, 80.0)
        result = BranchAndBoundSolver(problem).solve()
        assert result.makespan_ms == 80.0 + 300.0
        assert evaluate_assignment(problem, result.assignment) == (
            result.makespan_ms
        )

    def test_symmetry_breaking_limits_leaves(self):
        # Two identical tasks on three slots: symmetry breaking means only
        # slot patterns (0,0) and (0,1) are leaves, never (0,2).
        graph = chain_graph("c", [10.0, 10.0])
        problem = ScheduleProblem(graph, 1, 3, 5.0)
        result = BranchAndBoundSolver(problem).solve()
        assert result.leaves_evaluated <= 2
        assert set(result.assignment.values()) <= {0, 1}

    def test_zero_reconfig_platform(self):
        graph = chain_graph("c", [10.0, 10.0])
        problem = ScheduleProblem(graph, 2, 2, 0.0)
        result = BranchAndBoundSolver(problem).solve()
        # Without reconfig cost the two-slot pipeline is optimal:
        # items at 10,20 on t0; t1 finishes at 30.
        assert result.makespan_ms == 30.0


class TestPlotFreeFormatting:
    def test_fig7_table_only(self):
        from repro.experiments import fig7_deadlines
        from repro.experiments.runner import ExperimentSettings, RunCache

        result = fig7_deadlines.run(
            cache=RunCache(),
            settings=ExperimentSettings(num_sequences=1, num_events=6),
        )
        text = fig7_deadlines.format_result(result, plot=False)
        assert "violation rate" in text
        assert "|" not in text.splitlines()[2]  # no plot gutter

    def test_fig5_table_only(self):
        from repro.experiments import fig5_response
        from repro.experiments.runner import ExperimentSettings, RunCache

        result = fig5_response.run(
            cache=RunCache(),
            settings=ExperimentSettings(num_sequences=1, num_events=6),
        )
        text = fig5_response.format_result(result, plot=False)
        assert "Figure 5" in text
        assert "#" not in text
