"""Tests for the experiment harness (repro.experiments), small scale."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    fig5_response,
    fig6_tail,
    fig7_deadlines,
    fig8_breakdown,
    fig9_ablation,
    table1,
    table2,
    table3,
)
from repro.experiments.runner import (
    ExperimentSettings,
    RunCache,
    format_table,
    run_sequence,
)
from repro.workload.scenarios import STRESS, scenario_sequence

#: Tiny but statistically meaningful settings for harness tests.
SMALL = ExperimentSettings(num_sequences=1, num_events=8)


@pytest.fixture(scope="module")
def cache():
    """One shared cache so the experiment tests reuse simulations."""
    return RunCache()


class TestRunner:
    def test_run_sequence_returns_event_count(self):
        seq = scenario_sequence(STRESS, seed=1, num_events=4)
        results = run_sequence("fcfs", seq)
        assert len(results) == 4

    def test_cache_reuses_runs(self):
        cache = RunCache()
        seq = scenario_sequence(STRESS, seed=2, num_events=3)
        first = cache.results("fcfs", seq)
        second = cache.results("fcfs", seq)
        assert first is second
        assert cache.simulations == 1

    def test_cache_requires_labels(self):
        from repro.workload.events import EventSequence, EventSpec

        cache = RunCache()
        seq = EventSequence([EventSpec("lenet", 1, 1, 0.0)], label="")
        with pytest.raises(ExperimentError, match="label"):
            cache.results("fcfs", seq)

    def test_settings_env_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEQUENCES", "3")
        monkeypatch.setenv("REPRO_EVENTS", "7")
        settings = ExperimentSettings.from_env()
        assert settings.num_sequences == 3
        assert settings.num_events == 7
        monkeypatch.setenv("REPRO_EVENTS", "zero")
        with pytest.raises(ExperimentError, match="integer"):
            ExperimentSettings.from_env()
        monkeypatch.setenv("REPRO_EVENTS", "0")
        with pytest.raises(ExperimentError, match=">= 1"):
            ExperimentSettings.from_env()

    def test_base_seed_env_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_BASE_SEED", "12345")
        monkeypatch.setenv("REPRO_SEQUENCES", "3")
        settings = ExperimentSettings.from_env()
        assert settings.base_seed == 12345
        assert settings.seeds() == [12345, 12346, 12347]

    def test_base_seed_defaults_without_env(self, monkeypatch):
        from repro.experiments.runner import BASE_SEED

        monkeypatch.delenv("REPRO_BASE_SEED", raising=False)
        settings = ExperimentSettings.from_env()
        assert settings.base_seed == BASE_SEED
        assert settings.seeds()[0] == BASE_SEED

    def test_base_seed_env_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_BASE_SEED", "not-a-seed")
        with pytest.raises(ExperimentError, match="REPRO_BASE_SEED.*integer"):
            ExperimentSettings.from_env()
        monkeypatch.setenv("REPRO_BASE_SEED", "0")
        with pytest.raises(ExperimentError, match="REPRO_BASE_SEED.*>= 1"):
            ExperimentSettings.from_env()

    def test_base_seed_changes_stimuli(self):
        default = ExperimentSettings(num_sequences=1, num_events=5)
        shifted = ExperimentSettings(
            num_sequences=1, num_events=5, base_seed=default.base_seed + 100
        )
        seq_a = scenario_sequence(STRESS, default.seeds()[0], 5)
        seq_b = scenario_sequence(STRESS, shifted.seeds()[0], 5)
        assert list(seq_a) != list(seq_b)

    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.50" in text


class TestStaticTables:
    def test_table1_matches_paper_and_fits(self):
        result = table1.run()
        assert result.floorplan_valid
        assert result.slot_range["DSP"] == (46, 92)
        assert "Table 1" in table1.format_result(result)

    def test_table2_matches_paper_exactly(self):
        result = table2.run()
        assert result.all_match
        text = table2.format_result(result)
        assert "alexnet" in text and "184" in text


class TestWorkloadExperiments:
    def test_fig5_nimblock_wins(self, cache):
        result = fig5_response.run(cache=cache, settings=SMALL)
        for scenario in result.scenarios:
            assert result.best_scheduler(scenario) == "nimblock"
            for scheduler in result.schedulers:
                assert result.reduction(scenario, scheduler) > 0
        assert "Figure 5" in fig5_response.format_result(result)

    def test_fig6_tails_positive(self, cache):
        result = fig6_tail.run(cache=cache, settings=SMALL)
        for key, value in result.tails.items():
            assert value > 0
        assert "Figure 6" in fig6_tail.format_result(result)

    def test_fig7_curves_monotone(self, cache):
        result = fig7_deadlines.run(cache=cache, settings=SMALL)
        for curve in result.curves.values():
            assert all(
                a >= b - 1e-9 for a, b in zip(curve.rates, curve.rates[1:])
            )
        points = result.error_points("stress")
        assert set(points) == set(result.schedulers)
        assert "Figure 7" in fig7_deadlines.format_result(result)

    def test_fig8_fractions_sane(self, cache):
        result = fig8_breakdown.run(cache=cache, settings=SMALL)
        for breakdown in result.breakdowns.values():
            assert 0 < breakdown.run_fraction
            assert 0 <= breakdown.wait_fraction
            assert 0 < breakdown.reconfig_fraction < 1
        assert "Figure 8" in fig8_breakdown.format_result(result)

    def test_fig9_batch1_neutral(self, cache):
        result = fig9_ablation.run(
            cache=cache, settings=SMALL, batch_sizes=(1, 5)
        )
        for variant in result.variants:
            assert result.relative_response(1, variant) == pytest.approx(
                1.0, abs=0.25
            )
        assert result.relative_response(5, "nimblock") == 1.0
        assert "Figure 9" in fig9_ablation.format_result(result)

    def test_table3_covers_all_benchmarks(self, cache):
        settings = ExperimentSettings(num_sequences=2, num_events=12)
        result = table3.run(cache=cache, settings=settings)
        from repro.apps.catalog import BENCHMARK_NAMES

        for name in BENCHMARK_NAMES:
            assert result.execution_s[name] > 0
            for scheduler in result.schedulers:
                assert result.response(scheduler, name) > 0
        assert "Table 3" in table3.format_result(result)
