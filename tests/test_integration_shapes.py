"""Integration tests asserting the paper's qualitative result shapes.

These use reduced (but non-trivial) workloads and check the claims the
reproduction must uphold: Nimblock wins on average response time, has the
best tails, violates fewest tight deadlines, and the ablation ordering of
§5.6 holds.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentSettings, RunCache
from repro.metrics.deadlines import violation_rate
from repro.metrics.response import (
    mean_reduction_factor,
    tail_normalized_response,
)
from repro.workload.scenarios import (
    STRESS,
    fixed_batch_sequence,
    scenario_sequence,
)

SETTINGS = ExperimentSettings(num_sequences=2, num_events=12)


@pytest.fixture(scope="module")
def cache():
    return RunCache()


@pytest.fixture(scope="module")
def stress_runs(cache):
    sequences = [
        scenario_sequence(STRESS, seed, SETTINGS.num_events)
        for seed in SETTINGS.seeds()
    ]
    return {
        name: cache.combined(name, sequences)
        for name in ("baseline", "fcfs", "prema", "rr", "nimblock")
    }


class TestHeadlineClaims:
    def test_every_sharing_scheduler_beats_baseline_on_average(
        self, stress_runs
    ):
        baseline = stress_runs["baseline"]
        for name in ("fcfs", "prema", "rr", "nimblock"):
            assert mean_reduction_factor(baseline, stress_runs[name]) > 1.0

    def test_nimblock_has_best_average_reduction(self, stress_runs):
        baseline = stress_runs["baseline"]
        nimblock = mean_reduction_factor(baseline, stress_runs["nimblock"])
        for name in ("fcfs", "prema", "rr"):
            assert nimblock > mean_reduction_factor(
                baseline, stress_runs[name]
            )

    def test_nimblock_beats_rr_on_tails(self, stress_runs):
        baseline = stress_runs["baseline"]
        nb95 = tail_normalized_response(baseline, stress_runs["nimblock"], 95)
        rr95 = tail_normalized_response(baseline, stress_runs["rr"], 95)
        assert nb95 <= rr95

    def test_nimblock_fewest_tight_deadline_violations(self, stress_runs):
        nb = violation_rate(stress_runs["nimblock"], 1.5, priority=None)
        for name in ("baseline", "rr"):
            assert nb <= violation_rate(
                stress_runs[name], 1.5, priority=None
            )


class TestAblationOrdering:
    @pytest.fixture(scope="class")
    def ablation_runs(self, cache):
        sequences = [
            fixed_batch_sequence(10, seed, delay_ms=175.0,
                                 num_events=SETTINGS.num_events)
            for seed in SETTINGS.seeds()
        ]
        names = (
            "nimblock", "nimblock_no_preempt", "nimblock_no_pipe",
            "nimblock_no_preempt_no_pipe",
        )
        return {name: cache.combined(name, sequences) for name in names}

    def _mean_response(self, results):
        return sum(r.response_ms for r in results) / len(results)

    def test_full_nimblock_is_best(self, ablation_runs):
        # Preemption trades a little mean response for priority/deadline
        # protection, so allow a small tolerance at this sample size.
        full = self._mean_response(ablation_runs["nimblock"])
        for name, results in ablation_runs.items():
            assert full <= self._mean_response(results) * 1.05

    def test_pipelining_matters_more_than_preemption(self, ablation_runs):
        no_preempt = self._mean_response(ablation_runs["nimblock_no_preempt"])
        no_pipe = self._mean_response(ablation_runs["nimblock_no_pipe"])
        assert no_pipe >= no_preempt

    def test_no_pipe_variants_overlap(self, ablation_runs):
        no_pipe = self._mean_response(ablation_runs["nimblock_no_pipe"])
        neither = self._mean_response(
            ablation_runs["nimblock_no_preempt_no_pipe"]
        )
        assert neither == pytest.approx(no_pipe, rel=0.10)


class TestCrossSchedulerConsistency:
    def test_same_events_same_intrinsic_work(self, stress_runs):
        """All five runs process identical stimuli."""
        reference = stress_runs["baseline"]
        for name, results in stress_runs.items():
            assert [r.name for r in results] == [r.name for r in reference]
            assert [r.run_busy_ms for r in results] == [
                r.run_busy_ms for r in reference
            ]

    def test_single_slot_latency_is_scheduler_independent(self, stress_runs):
        reference = stress_runs["baseline"]
        for results in stress_runs.values():
            assert [r.single_slot_latency_ms for r in results] == [
                r.single_slot_latency_ms for r in reference
            ]
