"""Simulator-vs-closed-form validation (repro.analysis.baseline_model)."""

from __future__ import annotations

import pytest

from repro.analysis.baseline_model import (
    predicted_baseline_responses,
    predicted_exclusive_execution_ms,
)
from repro.config import SystemConfig
from repro.errors import SolverError
from repro.hypervisor.hypervisor import Hypervisor
from repro.schedulers.registry import make_scheduler
from repro.taskgraph.builders import chain_graph, diamond_graph
from repro.workload.generator import EventGenerator

#: Chain-only benchmark pool (the closed form covers chains).
CHAIN_BENCHMARKS = ("lenet", "imgc", "of", "3dr", "dr")


class TestClosedForm:
    def test_hand_computed_two_task_chain(self):
        config = SystemConfig(num_slots=2, reconfig_ms=80.0,
                              dispatch_overhead_ms=0.0)
        graph = chain_graph("c", [100.0, 100.0])
        first, finish = predicted_exclusive_execution_ms(graph, 2, config)
        # config t0 at 80, items to 280; t1 config at 160, runs 280-480.
        assert first == 80.0
        assert finish == 480.0

    def test_dispatch_overhead_included(self):
        config = SystemConfig(num_slots=2, dispatch_overhead_ms=2.0)
        graph = chain_graph("c", [100.0])
        first, finish = predicted_exclusive_execution_ms(graph, 1, config)
        assert first == 82.0
        assert finish == 182.0

    def test_rejects_wide_graphs(self):
        config = SystemConfig()
        graph = diamond_graph("d", [1.0, 1.0, 1.0, 1.0])
        with pytest.raises(SolverError, match="not a chain"):
            predicted_exclusive_execution_ms(graph, 1, config)

    def test_rejects_chains_longer_than_board(self):
        config = SystemConfig(num_slots=2)
        graph = chain_graph("c", [1.0, 1.0, 1.0])
        with pytest.raises(SolverError, match="exceeds"):
            predicted_exclusive_execution_ms(graph, 1, config)


class TestSimulatorAgreement:
    """The correctness anchor: simulation == closed form, exactly."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_baseline_simulation_matches_model(self, seed):
        config = SystemConfig()
        sequence = EventGenerator(
            seed, benchmarks=CHAIN_BENCHMARKS
        ).sequence(
            num_events=8, delay_range_ms=(100.0, 900.0),
            batch_range=(1, 6), label=f"validate{seed}",
        )
        predicted = predicted_baseline_responses(sequence, config)

        hypervisor = Hypervisor(make_scheduler("baseline"), config=config)
        for request in sequence.to_requests():
            hypervisor.submit(request)
        hypervisor.run()
        simulated = [r.response_ms for r in hypervisor.results()]

        assert simulated == pytest.approx(predicted, abs=1e-6)

    def test_agreement_with_custom_platform(self):
        config = SystemConfig(num_slots=4, reconfig_ms=50.0,
                              dispatch_overhead_ms=1.0)
        sequence = EventGenerator(
            7, benchmarks=("lenet", "3dr")
        ).sequence(num_events=5, delay_range_ms=(50.0, 500.0),
                   batch_range=(1, 4), label="validate-custom")
        predicted = predicted_baseline_responses(sequence, config)
        hypervisor = Hypervisor(make_scheduler("baseline"), config=config)
        for request in sequence.to_requests():
            hypervisor.submit(request)
        hypervisor.run()
        simulated = [r.response_ms for r in hypervisor.results()]
        assert simulated == pytest.approx(predicted, abs=1e-6)
