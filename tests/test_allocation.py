"""Tests for the three-phase slot allocator — §4.2 (repro.core.allocation)."""

from __future__ import annotations

import pytest

from repro.core.allocation import allocate_slots
from repro.errors import SchedulerError
from repro.taskgraph.builders import chain_graph
from tests.test_application_state import make_app


def candidates(*specs):
    """Build AppRuns from (num_tasks, batch, arrival) specs, oldest first."""
    apps = []
    for index, (num_tasks, batch, arrival) in enumerate(specs):
        graph = chain_graph(f"g{index}", [10.0] * num_tasks)
        apps.append(
            make_app(graph=graph, batch=batch, arrival=arrival, app_id=index)
        )
    return sorted(apps, key=lambda a: a.age_key)


class TestPhase1ForwardProgress:
    def test_everyone_gets_one_slot(self):
        apps = candidates((3, 1, 0.0), (3, 1, 1.0), (3, 1, 2.0))
        goals = {a.app_id: 1 for a in apps}
        allocation = allocate_slots(apps, 3, goals)
        assert allocation == {0: 1, 1: 1, 2: 1}

    def test_more_candidates_than_slots_favors_oldest(self):
        apps = candidates((3, 1, 0.0), (3, 1, 1.0), (3, 1, 2.0))
        goals = {a.app_id: 3 for a in apps}
        allocation = allocate_slots(apps, 2, goals)
        assert allocation == {0: 1, 1: 1, 2: 0}


class TestPhase2GoalNumbers:
    def test_raised_to_goal_oldest_first(self):
        apps = candidates((4, 5, 0.0), (4, 5, 1.0))
        goals = {0: 3, 1: 3}
        allocation = allocate_slots(apps, 5, goals)
        assert allocation == {0: 3, 1: 2}

    def test_goal_capped_by_useful_slots(self):
        apps = candidates((2, 5, 0.0))
        goals = {0: 4}  # only 2 unfinished tasks -> cap at 2
        allocation = allocate_slots(apps, 10, goals)
        assert allocation[0] == 2

    def test_zero_phase1_slot_is_skipped_in_phase2(self):
        apps = candidates((3, 5, 0.0), (3, 5, 1.0))
        goals = {0: 3, 1: 3}
        allocation = allocate_slots(apps, 1, goals)
        assert allocation == {0: 1, 1: 0}


class TestPhase3Surplus:
    def test_surplus_goes_to_oldest_up_to_capacity(self):
        apps = candidates((6, 5, 0.0), (2, 5, 1.0))
        goals = {0: 2, 1: 2}
        allocation = allocate_slots(apps, 10, goals)
        # phase1: 1+1; phase2: -> 2+2; phase3: the older app grows to its
        # concurrency bound min(6 tasks, batch 5 x width 1) = 5.
        assert allocation == {0: 5, 1: 2}

    def test_total_never_exceeds_slots(self):
        apps = candidates((6, 5, 0.0), (6, 5, 1.0), (6, 5, 2.0))
        goals = {a.app_id: 4 for a in apps}
        allocation = allocate_slots(apps, 10, goals)
        assert sum(allocation.values()) <= 10
        assert allocation[0] >= allocation[1] >= allocation[2] >= 1


class TestValidation:
    def test_missing_goal_rejected(self):
        apps = candidates((3, 1, 0.0))
        with pytest.raises(SchedulerError, match="goal"):
            allocate_slots(apps, 4, {})

    def test_bad_total_rejected(self):
        with pytest.raises(SchedulerError, match="total_slots"):
            allocate_slots([], 0, {})

    def test_empty_candidates(self):
        assert allocate_slots([], 10, {}) == {}
