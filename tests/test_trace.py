"""Tests for the trace recorder (repro.sim.trace)."""

from __future__ import annotations

from repro.sim.trace import Trace, TraceKind


def _sample_trace() -> Trace:
    trace = Trace()
    trace.record(0.0, TraceKind.APP_ARRIVED, app_id=1)
    trace.record(0.0, TraceKind.TASK_CONFIG_START, app_id=1, task_id="t0", slot=0)
    trace.record(80.0, TraceKind.TASK_CONFIG_DONE, app_id=1, task_id="t0", slot=0)
    trace.record(80.0, TraceKind.ITEM_START, app_id=1, task_id="t0", slot=0,
                 detail=0.0)
    trace.record(180.0, TraceKind.ITEM_DONE, app_id=1, task_id="t0", slot=0,
                 detail=0.0)
    trace.record(180.0, TraceKind.APP_RETIRED, app_id=1)
    trace.record(200.0, TraceKind.APP_ARRIVED, app_id=2)
    return trace


class TestBasics:
    def test_len_and_iteration(self):
        trace = _sample_trace()
        assert len(trace) == 7
        assert len(list(trace)) == 7

    def test_of_kind_filters(self):
        trace = _sample_trace()
        arrivals = trace.of_kind(TraceKind.APP_ARRIVED)
        assert [e.app_id for e in arrivals] == [1, 2]

    def test_for_app_filters(self):
        trace = _sample_trace()
        assert all(e.app_id == 2 for e in trace.for_app(2))
        assert len(trace.for_app(1)) == 6

    def test_first_finds_earliest(self):
        trace = _sample_trace()
        first = trace.first(TraceKind.APP_ARRIVED)
        assert first is not None and first.app_id == 1
        second = trace.first(TraceKind.APP_ARRIVED, app_id=2)
        assert second is not None and second.time == 200.0

    def test_first_returns_none_when_absent(self):
        assert _sample_trace().first(TraceKind.TASK_PREEMPTED) is None

    def test_str_contains_fields(self):
        event = _sample_trace().events[1]
        text = str(event)
        assert "task_config_start" in text
        assert "app=1" in text
        assert "slot=0" in text


class TestAggregates:
    def test_reconfig_busy_sums_intervals(self):
        assert _sample_trace().reconfig_busy_ms() == 80.0

    def test_reconfig_busy_per_app(self):
        assert _sample_trace().reconfig_busy_ms(app_id=1) == 80.0
        assert _sample_trace().reconfig_busy_ms(app_id=2) == 0.0

    def test_run_busy_sums_item_durations(self):
        assert _sample_trace().run_busy_ms() == 100.0

    def test_unmatched_starts_ignored(self):
        trace = Trace()
        trace.record(0.0, TraceKind.ITEM_START, app_id=1, task_id="t",
                     slot=0, detail=0.0)
        assert trace.run_busy_ms() == 0.0
