"""Tests for the overlay floorplanner (repro.overlay.floorplan)."""

from __future__ import annotations

import pytest

from repro.errors import FloorplanError
from repro.overlay.floorplan import Floorplan, SlotRegion
from repro.overlay.resources import ResourceVector, slot_resource_vector


def vec(**kwargs):
    return ResourceVector.from_mapping(kwargs)


class TestConstruction:
    def test_zcu106_default_has_ten_uniform_slots(self):
        plan = Floorplan.zcu106()
        assert plan.num_slots == 10
        assert plan.slot_resources == slot_resource_vector("min")

    def test_rejects_no_slots(self):
        with pytest.raises(FloorplanError, match="at least one slot"):
            Floorplan(vec(DSP=10), vec(DSP=1), [])

    def test_rejects_noncontiguous_indices(self):
        slots = [SlotRegion(0, vec(DSP=1)), SlotRegion(2, vec(DSP=1))]
        with pytest.raises(FloorplanError, match="indices"):
            Floorplan(vec(DSP=10), vec(DSP=1), slots)

    def test_rejects_nonuniform_slots(self):
        slots = [SlotRegion(0, vec(DSP=1)), SlotRegion(1, vec(DSP=2))]
        with pytest.raises(FloorplanError, match="uniform"):
            Floorplan(vec(DSP=10), vec(DSP=1), slots)

    def test_negative_slot_index_rejected(self):
        with pytest.raises(FloorplanError, match="index"):
            SlotRegion(-1, vec(DSP=1))


class TestValidation:
    def test_zcu106_plan_fits(self):
        Floorplan.zcu106(num_slots=10).validate()

    def test_overflowing_plan_rejected(self):
        slots = [SlotRegion(i, vec(DSP=6)) for i in range(2)]
        plan = Floorplan(vec(DSP=10), vec(DSP=0), slots)
        with pytest.raises(FloorplanError, match="exceeds device"):
            plan.validate()

    def test_total_reconfigurable_scales(self):
        plan = Floorplan.zcu106(num_slots=4)
        per_slot = plan.slot_resources.as_dict()["DSP"]
        assert plan.total_reconfigurable().as_dict()["DSP"] == 4 * per_slot


class TestTaskFit:
    def test_task_fits_slot(self):
        plan = Floorplan.zcu106()
        assert plan.task_fits_slot(vec(DSP=46, LUT=9000))
        assert not plan.task_fits_slot(vec(LUT=999999))


class TestReport:
    def test_report_has_all_sections(self):
        report = Floorplan.zcu106().utilization_report()
        for key in ("static", "per_slot", "all_slots", "device",
                    "device_utilization"):
            assert key in report

    def test_utilization_below_one(self):
        report = Floorplan.zcu106().utilization_report()
        assert all(0 < u <= 1.0 for u in report["device_utilization"].values())
