"""Edge-case and error-path tests for the hypervisor runtime."""

from __future__ import annotations

from typing import Optional

import pytest

from repro.errors import SchedulerError
from repro.hypervisor.hypervisor import Hypervisor
from repro.schedulers.base import (
    Action,
    ConfigureAction,
    PreemptAction,
    SchedulerPolicy,
)
from repro.schedulers.registry import make_scheduler
from repro.taskgraph.builders import chain_graph
from tests.conftest import request, run_named, small_config


class ScriptedPolicy(SchedulerPolicy):
    """Returns a fixed list of actions, one per decide() call."""

    name = "scripted"
    pipelined = False
    prefetch = True

    def __init__(self, actions):
        self._actions = list(actions)

    def decide(self, ctx) -> Optional[Action]:
        if self._actions:
            return self._actions.pop(0)
        return None


def _single_app_hypervisor(actions, batch=1):
    graph = chain_graph("c", [50.0])
    hv = Hypervisor(ScriptedPolicy(actions), config=small_config())
    hv.submit(request(graph, batch_size=batch))
    return hv


class TestInvalidActions:
    def test_configure_unknown_app_rejected(self):
        hv = _single_app_hypervisor(
            [ConfigureAction(99, "c_t0", 0)]
        )
        with pytest.raises(SchedulerError, match="unknown/retired app"):
            hv.run()

    def test_configure_unknown_task_rejected(self):
        hv = _single_app_hypervisor([ConfigureAction(0, "nope", 0)])
        with pytest.raises(SchedulerError, match="unknown task"):
            hv.run()

    def test_double_configure_rejected(self):
        hv = _single_app_hypervisor(
            [ConfigureAction(0, "c_t0", 0), ConfigureAction(0, "c_t0", 1)]
        )
        with pytest.raises(SchedulerError, match="cannot be configured"):
            hv.run()

    def test_configure_into_occupied_slot_rejected(self):
        graph2 = chain_graph("d", [50.0])
        hv = Hypervisor(
            ScriptedPolicy(
                [ConfigureAction(0, "c_t0", 0), ConfigureAction(1, "d_t0", 0)]
            ),
            config=small_config(),
        )
        hv.submit(request(chain_graph("c", [50.0])))
        hv.submit(request(graph2))
        with pytest.raises(SchedulerError, match="not free"):
            hv.run()

    def test_preempt_empty_slot_rejected(self):
        hv = _single_app_hypervisor([PreemptAction(1)])
        with pytest.raises(SchedulerError, match="cannot preempt slot"):
            hv.run()

    def test_policy_livelock_detected(self):
        class Livelock(SchedulerPolicy):
            name = "livelock"

            def decide(self, ctx):
                # Preempt and re-offer the same slot forever.
                if ctx.slot_waiting(0):
                    return PreemptAction(0)
                return None

        graph = chain_graph("c", [50.0, 50.0])
        hv = Hypervisor(make_scheduler("baseline"), config=small_config())
        # Run a legitimate policy first so slot 0 hosts a waiting task...
        hv.submit(request(graph, batch_size=1))
        hv.run()
        # ...then drive a livelocking policy against a fresh workload.
        hv2 = Hypervisor(Livelock(), config=small_config())
        hv2.submit(request(graph, batch_size=1))
        # Never configures anything: the workload cannot finish, so run to
        # a horizon. The pass-level livelock guard is exercised elsewhere;
        # here we check an idle policy cannot wedge a pass.
        hv2.run(until=5_000.0)
        assert not hv2.all_retired


class TestBitstreamLoadModeling:
    def test_first_config_pays_load_cost(self):
        graph = chain_graph("c", [100.0])
        base_hv, base = run_named(
            "baseline", [request(graph)], small_config()
        )
        loaded_hv = Hypervisor(
            make_scheduler("baseline"),
            config=small_config(),
            model_bitstream_loads=True,
        )
        loaded_hv.submit(request(graph))
        loaded_hv.run()
        loaded = loaded_hv.results()
        assert loaded[0].response_ms > base[0].response_ms
        assert loaded_hv.store.loads == 1


class TestTickLifecycle:
    def test_ticks_stop_when_idle_and_resume(self):
        graph = chain_graph("c", [50.0])
        hv = Hypervisor(make_scheduler("fcfs"), config=small_config())
        hv.submit(request(graph, arrival_ms=0.0))
        # A second burst long after the first workload drained.
        hv.submit(request(graph, arrival_ms=10_000.0))
        hv.run()
        assert hv.all_retired
        # No tick events should fire during the idle gap: the engine's
        # processed-event count stays far below gap/interval.
        idle_ticks = 10_000.0 / hv.config.scheduling_interval_ms
        assert hv.engine.processed < idle_ticks

    def test_interval_tick_drives_token_accumulation(self):
        graph = chain_graph("c", [1000.0])
        policy = make_scheduler("nimblock")
        hv = Hypervisor(policy, config=small_config())
        hv.submit(request(graph, batch_size=2, priority=3))
        hv.run()
        app = hv.apps[0]
        assert app.token > 3.0  # accumulated beyond its initial priority


class TestSimultaneousArrivals:
    def test_same_instant_arrivals_ordered_by_submission(self):
        g = chain_graph("g", [100.0])
        config = small_config(num_slots=1)
        _, results = run_named(
            "fcfs",
            [request(g, arrival_ms=0.0), request(g, arrival_ms=0.0)],
            config,
        )
        assert results[0].retire_ms < results[1].retire_ms


class TestContextHelpers:
    def test_free_slot_accounting(self):
        hv = Hypervisor(make_scheduler("fcfs"), config=small_config())
        ctx = hv._ctx
        assert ctx.free_slot_index() == 0
        assert ctx.free_slot_count() == 2
        assert ctx.slot_occupant(0) is None
        assert not ctx.slot_waiting(0)

    def test_occupant_visible_after_config(self):
        graph = chain_graph("c", [1000.0, 1000.0])
        hv = Hypervisor(make_scheduler("baseline"), config=small_config())
        hv.submit(request(graph, batch_size=1))
        hv.run(until=200.0)
        ctx = hv._ctx
        occupant = ctx.slot_occupant(0)
        assert occupant is not None
        app, task = occupant
        assert app.app_id == 0
        assert not ctx.slot_waiting(0)  # the task is mid-item at t=200
