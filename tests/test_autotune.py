"""Tests for the closed-loop remediation pipeline (``repro.autotune``).

Covers the four stages in isolation (detector rules, proposer rule
table, verifier scoring/ranking, applier swaps), the end-to-end drill
(an induced overload episode detected, patched and recovered mid-run),
the determinism contracts (``--jobs`` byte-identity, replay on/off,
armed-but-quiet zero-delta), the zero-cost lazy-import discipline, the
per-board cluster path, and the PR's satellite counters (admission
overload edges, per-priority shed, watchdog/overload observe metrics).
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.autotune import (
    AutotuneConfig,
    ConfigPatch,
    CounterDeltas,
    DetectorConfig,
    EpisodeMemo,
    SYMPTOM_KINDS,
    TunableConfig,
    WindowSignal,
    detect,
    propose,
    replay_episode,
    verify_candidates,
)
from repro.errors import AutotuneError, ServiceError
from repro.experiments import ext_overload
from repro.experiments.parallel import service_cells
from repro.facade import tune, tune_report
from repro.metrics.slo import SloTarget

SLO = SloTarget(p99_ms=1_000.0, max_loss_frac=0.05)
DET = DetectorConfig(slo=SLO)


def failing_windows(n, start=0, p99=5_000.0, arrived=10):
    return [
        WindowSignal(index=start + i, arrived=arrived, completed=arrived,
                     p99_ms=p99)
        for i in range(n)
    ]


def passing_window(index, arrived=10):
    return WindowSignal(index=index, arrived=arrived, completed=arrived,
                        p99_ms=10.0)


# ---------------------------------------------------------------------------
# Detector
# ---------------------------------------------------------------------------
class TestDetector:
    def test_slo_breach_needs_full_trailing_run(self):
        two = failing_windows(2)
        assert not any(
            s.kind == "slo_breach"
            for s in detect(two, CounterDeltas(), DET)
        )
        three = failing_windows(3)
        kinds = [s.kind for s in detect(three, CounterDeltas(), DET)]
        assert "slo_breach" in kinds

    def test_slo_breach_run_broken_by_met_window(self):
        windows = failing_windows(2) + [passing_window(2)] \
            + failing_windows(2, start=3)
        assert not any(
            s.kind == "slo_breach"
            for s in detect(windows, CounterDeltas(), DET)
        )

    def test_queue_growth_requires_depth_and_monotonicity(self):
        deep = [
            WindowSignal(index=i, arrived=5, completed=1,
                         peak_pending=20 + 4 * i)
            for i in range(3)
        ]
        kinds = [s.kind for s in detect(deep, CounterDeltas(), DET)]
        assert "queue_growth" in kinds
        shrinking = [
            WindowSignal(index=i, arrived=5, completed=1,
                         peak_pending=40 - 10 * i)
            for i in range(3)
        ]
        assert not any(
            s.kind == "queue_growth"
            for s in detect(shrinking, CounterDeltas(), DET)
        )

    def test_shed_storm_fraction_over_trailing_windows(self):
        stormy = [
            WindowSignal(index=i, arrived=10, completed=6, shed=4,
                         p99_ms=10.0)
            for i in range(2)
        ]
        found = detect(stormy, CounterDeltas(), DET)
        storm = [s for s in found if s.kind == "shed_storm"]
        assert storm and storm[0].severity == pytest.approx(0.4)

    def test_counter_rules(self):
        counters = CounterDeltas(
            overload_enters=5, overload_ms=1000.0, starvations=1, stalls=2
        )
        kinds = [s.kind for s in detect([], counters, DET)]
        assert kinds == ["overload_oscillation", "starvation",
                         "stall_cluster"]

    def test_power_pressure_only_with_cap(self):
        hot = CounterDeltas(energy_j=100.0, span_ms=1_000.0,
                            power_cap_w=45.0)
        kinds = [s.kind for s in detect([], hot, DET)]
        assert kinds == ["power_pressure"]
        uncapped = CounterDeltas(energy_j=100.0, span_ms=1_000.0)
        assert detect([], uncapped, DET) == ()

    def test_catalogue_order_and_uniqueness(self):
        windows = failing_windows(4) + [
            WindowSignal(index=4, arrived=10, completed=2, shed=8,
                         p99_ms=5_000.0, peak_pending=40),
            WindowSignal(index=5, arrived=10, completed=2, shed=8,
                         p99_ms=5_000.0, peak_pending=48),
            WindowSignal(index=6, arrived=10, completed=2, shed=8,
                         p99_ms=5_000.0, peak_pending=50),
        ]
        counters = CounterDeltas(
            overload_enters=9, starvations=3, stalls=5,
            energy_j=100.0, span_ms=1_000.0, power_cap_w=45.0,
        )
        symptoms = detect(windows, counters, DET)
        kinds = [s.kind for s in symptoms]
        assert kinds == list(SYMPTOM_KINDS)
        assert len(set(kinds)) == len(kinds)

    def test_inactive_windows_ignored_and_order_normalized(self):
        windows = failing_windows(3)
        noisy = [WindowSignal(index=99)] + list(reversed(windows))
        assert detect(noisy, CounterDeltas(), DET) == detect(
            windows, CounterDeltas(), DET
        )

    def test_config_validation(self):
        with pytest.raises(AutotuneError, match="breach_windows"):
            DetectorConfig(breach_windows=0)
        with pytest.raises(AutotuneError, match="storm_frac"):
            DetectorConfig(storm_frac=1.5)


# ---------------------------------------------------------------------------
# Proposer
# ---------------------------------------------------------------------------
class TestProposer:
    def breach(self, depth=40.0):
        return detect(
            failing_windows(3, arrived=20) + [
                WindowSignal(index=3 + i, arrived=20, completed=5,
                             p99_ms=5_000.0, peak_pending=int(depth))
                for i in range(3)
            ],
            CounterDeltas(),
            DET,
        )

    def test_unbounded_breach_offers_shed_and_degrade(self):
        tuning = TunableConfig()
        patches = propose(self.breach(), tuning)
        assert patches
        rules = [p.rule for p in patches]
        assert "bound-backlog" in rules and "degrade-backlog" in rules
        assert [p.risk for p in patches] == sorted(p.risk for p in patches)
        # Backoff-retry rejection hides loss from verifier attribution:
        # the proposer must never emit it.
        assert all(p.admission != "reject" for p in patches)

    def test_patch_rejects_reject_policy_and_bad_risk(self):
        with pytest.raises(AutotuneError, match="reject"):
            ConfigPatch(rule="r", symptom="s", risk=1, reason="",
                        admission="reject")
        with pytest.raises(AutotuneError, match="risk"):
            ConfigPatch(rule="r", symptom="s", risk=7, reason="")

    def test_watchdog_rules_are_risk_zero(self):
        tuning = TunableConfig(
            watchdog_knobs=(
                ("boost_tokens", False),
                ("stall_passes", 40),
                ("starvation_passes", 400),
            ),
        )
        symptoms = detect(
            [], CounterDeltas(starvations=2, stalls=3), DET
        )
        patches = propose(symptoms, tuning)
        watchdog_rules = [p for p in patches if p.watchdog_knobs]
        assert watchdog_rules
        assert all(p.risk == 0 for p in watchdog_rules)

    def test_no_symptoms_no_patches(self):
        assert propose((), TunableConfig()) == ()

    def test_dedup_and_noop_dropped(self):
        tuning = TunableConfig()
        patches = propose(self.breach(), tuning)
        ids = [p.patch_id for p in patches]
        assert len(ids) == len(set(ids))
        assert all(p.apply(tuning) != tuning for p in patches)

    def test_scheduler_swap_only_for_non_nimblock(self):
        nb = propose(self.breach(), TunableConfig())
        assert all(p.scheduler is None for p in nb)
        fc = propose(self.breach(), TunableConfig(scheduler="fcfs"))
        swaps = [p for p in fc if p.scheduler == "nimblock"]
        assert len(swaps) == 1 and swaps[0].risk == 3


# ---------------------------------------------------------------------------
# Verifier
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def burst_specs():
    return tuple(ext_overload.study_sequence(
        ext_overload.OVERLOAD_WORKLOAD, 1, 24, 4.0
    ))


class TestVerifier:
    def test_replay_episode_deterministic(self, burst_specs):
        tuning = TunableConfig()
        a = replay_episode(burst_specs, tuning, seed=1,
                           window_ms=10_000.0, slo=SLO)
        b = replay_episode(burst_specs, tuning, seed=1,
                           window_ms=10_000.0, slo=SLO)
        assert a.to_dict() == b.to_dict()
        assert a.digest() == b.digest()
        assert a.arrived == len(burst_specs)

    def test_verify_rejects_regression_and_no_improvement(self, burst_specs):
        # A generous SLO the unprotected baseline fully meets: any
        # shedding can only regress (loss) or tie (shed nothing).
        from repro.metrics.slo import DEFAULT_SERVICE_SLO

        tuning = TunableConfig()
        harmless = ConfigPatch(
            rule="bound-backlog", symptom="slo_breach", risk=1,
            reason="", admission="shed",
            admission_knobs=(
                ("low_watermark", 500), ("queue_capacity", 1000),
            ),
        )
        harmful = ConfigPatch(
            rule="bound-backlog", symptom="slo_breach", risk=1,
            reason="", admission="shed",
            admission_knobs=(("low_watermark", 1), ("queue_capacity", 2)),
        )
        baseline, verifications, winner = verify_candidates(
            burst_specs, tuning, (harmless, harmful),
            seed=1, window_ms=10_000.0, slo=DEFAULT_SERVICE_SLO,
        )
        assert baseline.attainment == 1.0
        assert len(verifications) == 2
        by_id = {v.patch.patch_id: v for v in verifications}
        # The huge cap sheds nothing: identical outcome, no reason to
        # take on patch risk.
        assert by_id[harmless.patch_id].verdict == "rejected:no-improvement"
        # The brutal two-slot cap sheds most of the burst: loss blows
        # the budget and attainment drops below the baseline's.
        assert by_id[harmful.patch_id].verdict == "rejected:regression"
        assert by_id[harmful.patch_id].score.shed > 0
        assert winner is None

    def test_memo_hits_on_identical_replay(self, burst_specs):
        memo = EpisodeMemo()
        tuning = TunableConfig()
        patch = ConfigPatch(
            rule="bound-backlog", symptom="slo_breach", risk=1,
            reason="", admission="shed",
            admission_knobs=(("low_watermark", 6), ("queue_capacity", 12)),
        )
        kwargs = dict(seed=1, window_ms=10_000.0, slo=SLO, memo=memo)
        first = verify_candidates(burst_specs, tuning, (patch,), **kwargs)
        again = verify_candidates(burst_specs, tuning, (patch,), **kwargs)
        assert memo.hits > 0
        assert first[0].to_dict() == again[0].to_dict()

    def test_empty_episode_is_refused(self):
        with pytest.raises(AutotuneError, match="empty episode"):
            replay_episode((), TunableConfig(), seed=1,
                           window_ms=10_000.0, slo=SLO)


# ---------------------------------------------------------------------------
# End-to-end drill
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def drill():
    """The acceptance drill: 4x burst episode, unbounded start, armed."""
    return tune(rate=1.0, submissions=600, seed=1, mode="metrics", jobs=1)


class TestEndToEndDrill:
    def test_patch_detected_verified_and_applied_mid_run(self, drill):
        tuned = drill["tuned"]
        assert tuned["applies"] >= 1
        applied = [d for d in tuned["decisions"] if d["applied"]]
        assert applied
        decision = applied[0]
        assert decision["symptoms"]
        verdicts = {
            v["patch"]["patch_id"]: v["verdict"]
            for v in decision["candidates"]
        }
        assert verdicts[decision["applied"]] == "verified"
        assert decision["tuning_after"] != decision["tuning_before"]
        assert decision["digest"]

    def test_remediation_beats_static_baseline(self, drill):
        assert drill["tuned"]["p99_ms"] < drill["baseline"]["p99_ms"]
        post = drill["post_apply"]
        assert post["tuned"]["attainment"] > post["baseline"]["attainment"]
        # The static baseline keeps missing the SLO after the point where
        # the tuned run patched itself and recovered.
        assert post["baseline"]["met"] == 0
        assert post["tuned"]["met"] >= 1

    def test_rejected_candidates_carry_scores(self, drill):
        rejected = [
            v
            for d in drill["tuned"]["decisions"]
            for v in d["candidates"]
            if v["verdict"] != "verified"
        ]
        assert rejected
        assert all(v["verdict"].startswith("rejected") for v in rejected)

    def test_payload_is_json_safe_and_digested(self, drill):
        blob = json.dumps(drill, sort_keys=True)
        assert drill["digest"] in blob


# ---------------------------------------------------------------------------
# Determinism contracts
# ---------------------------------------------------------------------------
EPISODE_SPEC = (
    "episode",
    (("phases", ((30.0, 2.0), (60.0, 8.0), (60.0, 2.0))),),
)


def service_task(*, armed, replay=True, submissions=240,
                 arrival=EPISODE_SPEC):
    autotune = AutotuneConfig() if armed else None
    return ("nimblock", "unbounded", 2.0, 0.0, 1, submissions,
            10_000.0, "metrics", replay, autotune, arrival)


class TestDeterminism:
    def test_jobs_identity(self, drill):
        assert drill == tune(
            rate=1.0, submissions=600, seed=1, mode="metrics", jobs=2
        )

    def test_replay_flag_identity_when_armed(self):
        on, off = service_cells(
            [service_task(armed=True, replay=True),
             service_task(armed=True, replay=False)],
            jobs=1,
        )
        assert on == off

    def test_armed_but_quiet_matches_plain_payload(self):
        calm = ("poisson", (("rate_per_s", 0.2),))
        armed, plain = service_cells(
            [service_task(armed=True, submissions=40, arrival=calm),
             service_task(armed=False, submissions=40, arrival=calm)],
            jobs=1,
        )
        assert armed["decisions"] == []
        assert armed["applies"] == 0
        stripped = {
            k: v for k, v in armed.items()
            if k not in ("decisions", "applies")
        }
        assert stripped == plain

    def test_tune_report_json_matches_payload(self):
        text = tune_report(
            rate=2.0, submissions=120, seed=1, as_json=True,
            mode="metrics", jobs=1,
        )
        payload = json.loads(text)
        assert payload == tune(
            rate=2.0, submissions=120, seed=1, mode="metrics", jobs=1
        )

    def test_autotune_refuses_snapshotting_loops(self):
        from repro.service.loop import ServiceLoop
        from repro.workload.arrivals import service_rate_process

        with pytest.raises(ServiceError, match="snapshot"):
            ServiceLoop(
                service_rate_process(1.0, seed=1),
                max_submissions=10,
                snapshot_every_windows=4,
                autotune=AutotuneConfig(),
            )


# ---------------------------------------------------------------------------
# Zero-cost discipline
# ---------------------------------------------------------------------------
class TestZeroCost:
    def test_unarmed_runs_never_import_autotune(self):
        code = (
            "import sys\n"
            "from repro.facade import serve\n"
            "serve('nimblock', rate=1.0, submissions=20, mode='metrics')\n"
            "assert not [m for m in sys.modules if 'autotune' in m], "
            "'autotune imported on an un-armed run'\n"
            "print('CLEAN')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, timeout=240,
        )
        assert result.returncode == 0, result.stderr
        assert "CLEAN" in result.stdout


# ---------------------------------------------------------------------------
# Cluster boards
# ---------------------------------------------------------------------------
class TestClusterAutotune:
    def test_armed_boards_carry_decision_records(self):
        from repro.facade import fleet

        plain = fleet(2, num_events=10, seed=3, jobs=1, mode="metrics")
        armed = fleet(
            2, num_events=10, seed=3, jobs=1, mode="metrics",
            autotune=AutotuneConfig(),
        )
        assert all("autotune" not in p for p in plain.boards)
        assert all("autotune" in p for p in armed.boards)
        for payload in armed.boards:
            record = payload["autotune"]
            assert record["tuning_before"]["scheduler"] == "nimblock"
            assert isinstance(record["symptoms"], list)

    def test_armed_cluster_jobs_identity(self):
        from repro.facade import fleet

        one = fleet(3, num_events=12, seed=5, jobs=1, mode="metrics",
                    autotune=AutotuneConfig())
        two = fleet(3, num_events=12, seed=5, jobs=2, mode="metrics",
                    autotune=AutotuneConfig())
        assert one.to_dict() == two.to_dict()
        assert one.snapshot_digest() == two.snapshot_digest()

    def test_fault_injected_boards_are_skipped(self):
        from repro.facade import fleet

        report = fleet(
            2, num_events=10, seed=3, jobs=1, mode="metrics",
            fault_rate=0.05, autotune=AutotuneConfig(),
        )
        for payload in report.boards:
            assert payload["autotune"]["skipped"] == "fault-injected-board"


# ---------------------------------------------------------------------------
# Satellite counters
# ---------------------------------------------------------------------------
class TestSatelliteCounters:
    @pytest.fixture(scope="class")
    def shed_run(self):
        from repro.admission import AdmissionController
        from repro.hypervisor.hypervisor import Hypervisor
        from repro.schedulers.registry import make_scheduler

        sequence = ext_overload.study_sequence(
            ext_overload.OVERLOAD_WORKLOAD, 1, 30, 4.0
        )
        controller = AdmissionController("shed", seed=1, queue_capacity=6)
        hv = Hypervisor(make_scheduler("fcfs"), admission=controller)
        for request in sequence.to_requests():
            hv.submit(request)
        hv.run()
        return hv, controller

    def test_overload_enters_counts_enter_edges(self, shed_run):
        from repro.sim.trace import TraceKind

        hv, controller = shed_run
        enters = hv.trace.count(TraceKind.OVERLOAD_ENTER)
        assert enters > 0
        assert controller.stats.overload_enters == enters

    def test_shed_by_priority_partitions_total_shed(self, shed_run):
        _, controller = shed_run
        stats = controller.stats
        assert stats.shed > 0
        assert sum(stats.shed_by_priority.values()) == stats.shed
        assert all(p >= 1 for p in stats.shed_by_priority)

    def test_observe_snapshot_surfaces_detector_inputs(self):
        from repro.observe.aggregate import observed_run

        sequence = ext_overload.study_sequence(
            ext_overload.OVERLOAD_WORKLOAD, 1, 24, 4.0
        )
        _, observer = observed_run(
            "fcfs", sequence, admission="shed", seed=1
        )
        snapshot = observer.snapshot()
        counters = snapshot["counters"]
        expected = (
            "nimblock_overload_enters_total",
            "nimblock_overload_exits_total",
            "nimblock_overload_ms_total",
            "nimblock_watchdog_stalls_detected_total",
            "nimblock_watchdog_stall_kicks_total",
            "nimblock_watchdog_starvations_detected_total",
            "nimblock_watchdog_starvation_boosts_total",
            "nimblock_apps_shed_priority1_total",
            "nimblock_apps_shed_priority3_total",
            "nimblock_apps_shed_priority9_total",
        )
        for name in expected:
            assert name in counters, name
        shed_total = counters["nimblock_apps_shed_total"]["value"]
        by_priority = sum(
            counters[f"nimblock_apps_shed_priority{p}_total"]["value"]
            for p in (1, 3, 9)
        )
        assert by_priority == shed_total
        assert counters["nimblock_overload_enters_total"]["value"] > 0

    def test_counters_zero_but_present_without_admission(self):
        from repro.observe.aggregate import observed_run
        from repro.workload.scenarios import STRESS, scenario_sequence

        sequence = scenario_sequence(STRESS, seed=1, num_events=6)
        _, observer = observed_run("nimblock", sequence)
        counters = observer.snapshot()["counters"]
        for name in (
            "nimblock_overload_enters_total",
            "nimblock_watchdog_stall_kicks_total",
            "nimblock_apps_shed_priority1_total",
        ):
            assert counters[name]["value"] == 0


# ---------------------------------------------------------------------------
# Study + CLI
# ---------------------------------------------------------------------------
class TestStudyAndCli:
    def test_ext_autotune_runs_and_renders(self):
        from repro.experiments import ext_autotune
        from repro.experiments.runner import ExperimentSettings

        result = ext_autotune.run(
            ExperimentSettings(num_sequences=1, num_events=1),
            submissions=150,
            mode="metrics",
        )
        assert set(result["cells"]) == {
            "static-unbounded", "static-shed", "autotuned"
        }
        assert result["cells"]["autotuned"]["applies"] >= 0
        text = ext_autotune.format_result(result)
        assert "autotuned" in text and "static-shed" in text

    def test_cli_tune_fast_deterministic(self):
        from repro.cli import main

        argv = ["tune", "--fast", "--json", "--submissions", "120"]
        outputs = []
        for jobs in ("1", "2"):
            proc = subprocess.run(
                [sys.executable, "-m", "repro.cli", *argv, "--jobs", jobs],
                capture_output=True, text=True, timeout=300,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        payload = json.loads(outputs[0])
        assert "baseline" in payload and "tuned" in payload
        assert main is not None  # CLI imports cleanly in-process too
