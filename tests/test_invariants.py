"""Tests for the runtime invariant checker (``repro.invariants``).

Clean runs (every scheduler, full-rate chaos, overloaded admission) must
pass the full suite with zero violations and a byte-identical trace;
corrupted state must raise :class:`InvariantViolation` naming the
invariant and carrying the offending trace window.
"""

from __future__ import annotations

import pytest

from repro.admission import AdmissionController
from repro.errors import InvariantViolation, SchedulerError
from repro.hypervisor.hypervisor import Hypervisor
from repro.invariants import InvariantChecker, checked_run
from repro.schedulers.registry import ALL_SCHEDULERS, make_scheduler
from repro.workload.scenarios import (
    STRESS,
    chaos_scenario,
    scenario_sequence,
)

from tests.test_perf_equivalence import (
    PINNED_RUNS,
    pinned_sequence,
    run_digest,
)


def small_sequence(seed=3, num_events=6):
    return scenario_sequence(STRESS, seed, num_events)


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------
class TestConstruction:
    def test_bad_window_rejected(self):
        with pytest.raises(SchedulerError, match="window"):
            InvariantChecker(window=0)

    def test_bad_check_every_rejected(self):
        with pytest.raises(SchedulerError, match="check_every"):
            InvariantChecker(check_every=0)


# ---------------------------------------------------------------------------
# Clean runs
# ---------------------------------------------------------------------------
class TestCleanRuns:
    @pytest.mark.parametrize("name", sorted(ALL_SCHEDULERS))
    def test_every_scheduler_passes_the_suite(self, name):
        hv, checker = checked_run(name, small_sequence())
        assert hv.all_retired
        assert checker.passes_checked > 0

    def test_full_rate_chaos_passes_the_suite(self):
        fault_config = chaos_scenario("mixed").fault_config(1.0, seed=5)
        hv, checker = checked_run(
            "nimblock", small_sequence(), fault_config=fault_config
        )
        assert checker.passes_checked > 0

    def test_overloaded_admission_passes_the_suite(self):
        from repro.experiments.ext_overload import (
            OVERLOAD_WORKLOAD,
            study_sequence,
        )

        sequence = study_sequence(OVERLOAD_WORKLOAD, 3, 24, 4.0)
        for policy in ("reject", "shed", "degrade"):
            _, checker = checked_run(
                "fcfs", sequence,
                admission=AdmissionController(policy, seed=3),
            )
            assert checker.passes_checked > 0

    def test_checked_run_matches_golden_pin(self):
        # The checker only reads state: a checked nimblock run hashes to
        # the same golden pin as the unobserved run.
        hv, _ = checked_run("nimblock", pinned_sequence())
        assert run_digest("nimblock") == PINNED_RUNS["nimblock"]
        # And directly: attach a checker through the observer hook and
        # compare against a plain run of the same workload.
        checker = InvariantChecker()
        observed = Hypervisor(make_scheduler("nimblock"), observer=checker)
        for request in pinned_sequence().to_requests():
            observed.submit(request)
        observed.run()
        assert len(observed.trace) == len(hv.trace)

    def test_check_every_samples_passes(self):
        checker = InvariantChecker(check_every=10 ** 9)
        hv = Hypervisor(make_scheduler("nimblock"), observer=checker)
        for request in small_sequence().to_requests():
            hv.submit(request)
        hv.run()
        assert hv.scheduler_passes > 0
        assert checker.passes_checked == 0  # sampled out entirely
        checker.check_now(hv, hv.engine.now)
        assert checker.passes_checked == 1


# ---------------------------------------------------------------------------
# Violations
# ---------------------------------------------------------------------------
class _CorruptingChecker(InvariantChecker):
    """Checker that corrupts hypervisor state once, mid-run, then checks."""

    def __init__(self, corruption, after_passes=10, **kwargs):
        super().__init__(**kwargs)
        self._corruption = corruption
        self._after = after_passes
        self._seen = 0
        self.corrupted = False

    def pass_finished(self, hypervisor, now, token):
        self._seen += 1
        if not self.corrupted and self._seen >= self._after:
            if self._corruption(hypervisor):
                self.corrupted = True
        super().pass_finished(hypervisor, now, token)


def _run_corrupted(corruption, scheduler="nimblock", **kwargs):
    checker = _CorruptingChecker(corruption, **kwargs)
    hv = Hypervisor(make_scheduler(scheduler), observer=checker)
    for request in small_sequence().to_requests():
        hv.submit(request)
    hv.run()
    return checker


class TestViolations:
    def test_token_decrease_raises(self):
        def corrupt(hv):
            pending = hv.pending.in_arrival_order()
            if not pending:
                return False
            pending[0].token = pending[0].priority - 5.0
            return True

        with pytest.raises(InvariantViolation) as info:
            _run_corrupted(corrupt)
        assert info.value.invariant == "token-conservation"
        assert info.value.events  # carries the trace window

    def test_slot_index_mismatch_raises(self):
        from repro.overlay.device import SlotPhase

        def corrupt(hv):
            for slot in hv.device.slots:
                if slot.phase is not SlotPhase.OCCUPIED:
                    continue
                occupant = slot.occupant
                if occupant is not None:
                    occupant[1].slot_index = slot.index + 1
                    return True
            return False

        with pytest.raises(InvariantViolation) as info:
            _run_corrupted(corrupt)
        assert info.value.invariant == "slot-mutual-exclusion"

    def test_queue_drift_raises(self):
        def corrupt(hv):
            hv.pending._dead += 1
            return True

        with pytest.raises(InvariantViolation) as info:
            _run_corrupted(corrupt)
        assert info.value.invariant == "pending-queue-consistency"

    def test_window_bounds_the_attached_events(self):
        def corrupt(hv):
            hv.pending._dead += 1
            return True

        with pytest.raises(InvariantViolation) as info:
            _run_corrupted(corrupt, window=5)
        assert 0 < len(info.value.events) <= 5

    def test_violation_message_is_self_contained(self):
        error = InvariantViolation(
            "slot-mutual-exclusion", "slot 3 hosts two tasks",
            events=("EVENT-A", "EVENT-B"),
        )
        text = str(error)
        assert "[slot-mutual-exclusion]" in text
        assert "slot 3 hosts two tasks" in text
        assert "offending trace window (last 2)" in text
        assert "EVENT-A" in text and "EVENT-B" in text

    def test_final_state_check_on_completed_run(self):
        hv, checker = checked_run("fcfs", small_sequence())
        hv.pending._dead += 1
        with pytest.raises(InvariantViolation):
            checker.check_now(hv, hv.engine.now)
