"""Tests for the FaaS gateway (repro.hypervisor.faas)."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.hypervisor.faas import FaaSGateway, FunctionSpec
from repro.hypervisor.hypervisor import Hypervisor
from repro.schedulers.registry import make_scheduler
from repro.taskgraph.builders import chain_graph
from tests.conftest import small_config


@pytest.fixture
def gateway():
    hypervisor = Hypervisor(
        make_scheduler("nimblock"), config=small_config(num_slots=3)
    )
    return FaaSGateway(hypervisor)


def spec(name="fn", slo=None, priority=3):
    return FunctionSpec(
        name=name,
        graph=chain_graph(name, [50.0, 50.0]),
        default_priority=priority,
        slo_factor=slo,
    )


class TestRegistration:
    def test_register_and_list(self, gateway):
        gateway.register(spec("resize"))
        gateway.register(spec("detect"))
        assert gateway.functions() == ["detect", "resize"]

    def test_duplicate_rejected(self, gateway):
        gateway.register(spec("fn"))
        with pytest.raises(WorkloadError, match="already registered"):
            gateway.register(spec("fn"))

    def test_register_benchmark(self, gateway):
        gateway.register_benchmark("lenet", slo_factor=3.0)
        assert gateway.functions() == ["lenet"]

    def test_spec_validation(self):
        with pytest.raises(WorkloadError):
            FunctionSpec("f", chain_graph("f", [1.0]), default_priority=5)
        with pytest.raises(WorkloadError):
            FunctionSpec("f", chain_graph("f", [1.0]), default_batch=0)
        with pytest.raises(WorkloadError):
            FunctionSpec("f", chain_graph("f", [1.0]), slo_factor=0.0)


class TestInvocation:
    def test_unknown_function_rejected(self, gateway):
        with pytest.raises(WorkloadError, match="unknown function"):
            gateway.invoke("nope", at_ms=0.0)

    def test_invocations_complete_with_latency(self, gateway):
        gateway.register(spec("fn"))
        first = gateway.invoke("fn", at_ms=0.0, batch_size=2)
        second = gateway.invoke("fn", at_ms=100.0)
        gateway.run()
        outcomes = gateway.outcomes()
        assert [o.invocation_id for o in outcomes] == [first, second]
        assert all(o.latency_ms > 0 for o in outcomes)
        assert outcomes[0].function == "fn"

    def test_defaults_and_overrides(self, gateway):
        gateway.register(spec("fn", priority=3))
        gateway.invoke("fn", at_ms=0.0)
        gateway.invoke("fn", at_ms=10.0, batch_size=4, priority=9)
        gateway.run()
        outcomes = gateway.outcomes()
        assert outcomes[0].result.batch_size == 1
        assert outcomes[0].result.priority == 3
        assert outcomes[1].result.batch_size == 4
        assert outcomes[1].result.priority == 9


class TestAdmissionControl:
    def _gateway(self, max_inflight):
        hypervisor = Hypervisor(
            make_scheduler("fcfs"), config=small_config(num_slots=2)
        )
        return FaaSGateway(
            hypervisor, max_inflight_per_function=max_inflight
        )

    def test_burst_defers_beyond_window(self):
        gateway = self._gateway(max_inflight=2)
        gateway.register(spec("fn"))
        ids = [gateway.invoke("fn", at_ms=float(i)) for i in range(5)]
        assert ids[0] is not None and ids[1] is not None
        assert ids[2] is None and ids[4] is None
        assert gateway.deferred_total == 3

    def test_deferred_invocations_eventually_run(self):
        gateway = self._gateway(max_inflight=1)
        gateway.register(spec("fn"))
        for i in range(4):
            gateway.invoke("fn", at_ms=float(i))
        gateway.run()
        outcomes = gateway.outcomes()
        assert len(outcomes) == 4
        assert all(o.latency_ms > 0 for o in outcomes)

    def test_deferred_release_is_serialized(self):
        gateway = self._gateway(max_inflight=1)
        gateway.register(spec("fn"))
        for i in range(3):
            gateway.invoke("fn", at_ms=0.0)
        gateway.run()
        retires = sorted(
            o.result.retire_ms for o in gateway.outcomes()
        )
        starts = sorted(
            o.result.first_start_ms for o in gateway.outcomes()
        )
        # With a window of one, invocation k starts only after k-1 retired.
        assert starts[1] >= retires[0]
        assert starts[2] >= retires[1]

    def test_window_validation(self):
        hypervisor = Hypervisor(
            make_scheduler("fcfs"), config=small_config()
        )
        with pytest.raises(WorkloadError, match="max_inflight"):
            FaaSGateway(hypervisor, max_inflight_per_function=0)

    def test_no_control_never_defers(self):
        gateway = self._gateway(max_inflight=None)
        gateway.register(spec("fn"))
        ids = [gateway.invoke("fn", at_ms=0.0) for _ in range(5)]
        assert all(i is not None for i in ids)
        assert gateway.deferred_total == 0


class TestSLO:
    def test_no_slo_means_none(self, gateway):
        gateway.register(spec("fn"))
        gateway.invoke("fn", at_ms=0.0)
        gateway.run()
        assert gateway.outcomes()[0].met_slo is None
        assert gateway.slo_compliance() == {}

    def test_uncontended_invocation_meets_generous_slo(self, gateway):
        gateway.register(spec("fn", slo=5.0))
        gateway.invoke("fn", at_ms=0.0)
        gateway.run()
        assert gateway.outcomes()[0].met_slo is True
        assert gateway.slo_compliance() == {"fn": 1.0}

    def test_contention_breaks_tight_slo(self):
        hypervisor = Hypervisor(
            make_scheduler("fcfs"), config=small_config(num_slots=1)
        )
        gateway = FaaSGateway(hypervisor)
        gateway.register(spec("fn", slo=1.0))
        for i in range(4):
            gateway.invoke("fn", at_ms=float(i))
        gateway.run()
        compliance = gateway.slo_compliance()["fn"]
        assert compliance < 1.0
