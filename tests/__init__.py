"""Test suite for the Nimblock reproduction.

This is a package (not loose modules) so cross-test helpers such as
``tests.conftest.run_workload`` import identically under both
``python -m pytest`` and a bare ``pytest`` invocation.
"""
