"""Tests for workload generation (repro.workload)."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.workload.events import EventSequence, EventSpec
from repro.workload.generator import (
    EVENTS_PER_SEQUENCE,
    MAX_BATCH_SIZE,
    EventGenerator,
)
from repro.workload.scenarios import (
    ABLATION_BATCH_SIZES,
    REALTIME,
    SCENARIOS,
    STANDARD,
    STRESS,
    fixed_batch_sequence,
    scenario_sequence,
)


class TestEventSpec:
    def test_to_request_resolves_benchmark(self):
        event = EventSpec("lenet", 5, 3, 100.0)
        req = event.to_request()
        assert req.name == "lenet"
        assert req.graph.num_tasks == 3
        assert req.batch_size == 5

    def test_validation(self):
        with pytest.raises(WorkloadError):
            EventSpec("lenet", 0, 3, 0.0)
        with pytest.raises(WorkloadError):
            EventSpec("lenet", 1, 0, 0.0)
        with pytest.raises(WorkloadError):
            EventSpec("lenet", 1, 1, -5.0)


class TestEventSequence:
    def test_rejects_empty(self):
        with pytest.raises(WorkloadError, match="non-empty"):
            EventSequence([])

    def test_rejects_out_of_order(self):
        events = [EventSpec("lenet", 1, 1, 10.0), EventSpec("imgc", 1, 1, 0.0)]
        with pytest.raises(WorkloadError, match="arrival order"):
            EventSequence(events)

    def test_span_and_benchmarks(self):
        events = [
            EventSpec("lenet", 1, 1, 0.0),
            EventSpec("imgc", 1, 1, 50.0),
            EventSpec("lenet", 1, 1, 80.0),
        ]
        seq = EventSequence(events, label="x")
        assert seq.span_ms == 80.0
        assert seq.benchmarks_used() == ["lenet", "imgc"]
        assert len(seq.to_requests()) == 3


class TestGenerator:
    def test_paper_defaults(self):
        assert EVENTS_PER_SEQUENCE == 20
        assert MAX_BATCH_SIZE == 30

    def test_seeded_determinism(self):
        a = EventGenerator(7).sequence()
        b = EventGenerator(7).sequence()
        assert a.events == b.events

    def test_different_seeds_differ(self):
        a = EventGenerator(7).sequence()
        b = EventGenerator(8).sequence()
        assert a.events != b.events

    def test_value_ranges(self):
        seq = EventGenerator(3).sequence(num_events=50)
        for event in seq:
            assert 1 <= event.batch_size <= 30
            assert event.priority in (1, 3, 9)

    def test_delay_range_respected(self):
        seq = EventGenerator(3).sequence(
            num_events=20, delay_range_ms=(100.0, 200.0)
        )
        gaps = [
            b.arrival_ms - a.arrival_ms
            for a, b in zip(seq.events, seq.events[1:])
        ]
        assert all(100.0 <= gap <= 200.0 for gap in gaps)

    def test_fixed_batch_override(self):
        seq = EventGenerator(3).sequence(fixed_batch=5)
        assert all(event.batch_size == 5 for event in seq)

    def test_validation(self):
        generator = EventGenerator(1)
        with pytest.raises(WorkloadError):
            generator.sequence(num_events=0)
        with pytest.raises(WorkloadError):
            generator.sequence(delay_range_ms=(200.0, 100.0))
        with pytest.raises(WorkloadError):
            generator.sequence(batch_range=(5, 2))
        with pytest.raises(WorkloadError):
            generator.sequence(fixed_batch=0)
        with pytest.raises(WorkloadError):
            EventGenerator(1, benchmarks=())


class TestScenarios:
    def test_paper_delay_ranges(self):
        assert STANDARD.delay_range_ms == (1500.0, 2000.0)
        assert STRESS.delay_range_ms == (150.0, 200.0)
        assert REALTIME.delay_range_ms == (50.0, 50.0)
        assert len(SCENARIOS) == 3

    def test_scenario_sequence_labelled(self):
        seq = scenario_sequence(STRESS, seed=5, num_events=4)
        assert "stress" in seq.label
        assert len(seq) == 4

    def test_realtime_constant_gap(self):
        seq = scenario_sequence(REALTIME, seed=5, num_events=10)
        gaps = {
            round(b.arrival_ms - a.arrival_ms, 6)
            for a, b in zip(seq.events, seq.events[1:])
        }
        assert gaps == {50.0}

    def test_fixed_batch_sequence_defaults_to_table3(self):
        seq = fixed_batch_sequence(5, seed=1, num_events=6)
        assert all(e.batch_size == 5 for e in seq)
        gaps = {
            b.arrival_ms - a.arrival_ms
            for a, b in zip(seq.events, seq.events[1:])
        }
        assert gaps == {500.0}

    def test_ablation_batches(self):
        assert ABLATION_BATCH_SIZES == (1, 5, 10, 15, 20)
